//go:build !simdebug

package sim

// DebugEnabled is false in normal builds: every `if sim.DebugEnabled`
// guard is a compile-time-false branch the compiler deletes, so the
// invariant layer costs nothing unless the simdebug tag is set.
const DebugEnabled = false
