package sim

import (
	"testing"
)

// FuzzEngineSchedule drives random interleaved Schedule/Cancel/RunUntil/
// Step/Run sequences against a reference model (a sorted slice of expected
// executions) and checks that the engine's 4-ary heap and event pool
// preserve the kernel's contract:
//
//   - events execute in (time, priority, schedule-order) order, exactly
//     once, at exactly their scheduled timestamp;
//   - canceled events never run;
//   - the model-facing counters (EventsScheduled, EventsExecuted, Pending)
//     account for every event;
//   - the free list recycles executed and canceled events without ever
//     handing a live event back out (checked structurally here, and by the
//     simdebug pool invariants when the tag is on).
//
// The input bytes form an op stream: each op consumes 1-3 bytes, so the
// fuzzer's minimization maps directly onto shorter schedules.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 0, 20, 0, 6, 15, 0, 5, 2})
	f.Add([]byte{0, 1, 0, 0, 1, 0, 0, 1, 0, 4, 0, 4, 1, 6, 255, 7, 7})
	f.Add([]byte{0, 0, 0, 1, 0, 4, 2, 0, 0, 3, 6, 0, 0, 200, 1, 7, 4, 5, 6, 9})
	f.Add([]byte{2, 50, 4, 1, 50, 3, 3, 50, 2, 0, 50, 1, 6, 50, 4, 0, 4, 1, 4, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		type refEvent struct {
			id       int
			at       Time // absolute scheduled time
			pri      int
			canceled bool
			executed bool
		}

		e := NewEngine(1)
		var refs []*refEvent
		var handles []*Event // parallel to refs; nil once the handle is dead
		var got []int        // executed ids, in engine order
		var ran []bool       // per-id: the engine actually ran it (callback fired)

		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}

		// refPending returns pending (non-canceled, non-executed) events
		// with at <= limit, in the engine's (time, priority, schedule
		// order) execution order. Schedule order stands in for the engine's
		// seq: each ScheduleP call consumes exactly one sequence number.
		refPending := func(limit Time) []*refEvent {
			var out []*refEvent
			for _, r := range refs {
				if !r.canceled && !r.executed && r.at <= limit {
					out = append(out, r)
				}
			}
			// Insertion sort keeps ties in schedule order (stable).
			for i := 1; i < len(out); i++ {
				for j := i; j > 0; j-- {
					a, b := out[j], out[j-1]
					if a.at < b.at || (a.at == b.at && a.pri < b.pri) {
						out[j], out[j-1] = out[j-1], out[j]
					} else {
						break
					}
				}
			}
			return out
		}
		// wantOrder accumulates the reference's expected execution order
		// incrementally, run window by run window: a global post-hoc sort
		// would mis-order later-scheduled events that tie on timestamp
		// with events already executed in an earlier window.
		var wantOrder []int
		refExecute := func(rs []*refEvent) {
			for _, r := range rs {
				r.executed = true
				wantOrder = append(wantOrder, r.id)
			}
		}

		schedules := 0
		for pos < len(data) {
			switch op := next() % 8; {
			case op < 4: // schedule (weighted: the dominant kernel op)
				d := Time(next()) * Nanosecond
				pri := int(next()%5) - 2
				id := len(refs)
				r := &refEvent{id: id, at: e.Now() + d, pri: pri}
				refs = append(refs, r)
				handles = append(handles, nil)
				ran = append(ran, false)
				handles[id] = e.ScheduleP(d, pri, func() {
					if now := e.Now(); now != r.at {
						t.Fatalf("event %d ran at %v, scheduled for %v", id, now, r.at)
					}
					if ran[id] {
						t.Fatalf("event %d executed twice", id)
					}
					ran[id] = true
					got = append(got, id)
					handles[id] = nil // handle dies when the event fires
				})
				schedules++
			case op < 6: // cancel a live handle
				if len(handles) == 0 {
					continue
				}
				i := int(next()) % len(handles)
				if handles[i] == nil {
					continue // executed or already canceled: handle is dead
				}
				e.Cancel(handles[i])
				handles[i] = nil
				refs[i].canceled = true
			case op == 6: // bounded run
				limit := e.Now() + Time(next())*Nanosecond
				refExecute(refPending(limit))
				e.RunUntil(limit)
			default: // single step
				if rs := refPending(MaxTime); len(rs) > 0 {
					refExecute(rs[:1])
				}
				e.Step()
			}
		}
		refExecute(refPending(MaxTime))
		e.Run()

		// Execution trace matches the reference order exactly.
		if len(got) != len(wantOrder) {
			t.Fatalf("executed %d events, reference says %d", len(got), len(wantOrder))
		}
		for i, id := range got {
			if id != wantOrder[i] {
				t.Fatalf("execution order diverged at %d: got event %d, want %d", i, id, wantOrder[i])
			}
		}

		// Counters account for every event.
		if e.EventsScheduled() != uint64(schedules) {
			t.Fatalf("EventsScheduled = %d, want %d", e.EventsScheduled(), schedules)
		}
		if e.EventsExecuted() != uint64(len(got)) {
			t.Fatalf("EventsExecuted = %d, want %d", e.EventsExecuted(), len(got))
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending = %d after final Run, want 0", e.Pending())
		}

		// Pool recycling: after a full drain every event object the engine
		// ever allocated is back in the free list — no more objects than
		// schedules, and at least one if anything was scheduled (the pool
		// actually recycles rather than leaking).
		if free := e.PoolFree(); schedules > 0 && (free < 1 || free > schedules) {
			t.Fatalf("pool free = %d after drain, want 1..%d", free, schedules)
		}
	})
}
