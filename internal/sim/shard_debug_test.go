//go:build simdebug

package sim

import "testing"

// These tests prove the shard-causality invariant layer detects broken
// conservatism rather than merely existing: each one constructs a
// violation the release build would silently turn into divergence and
// checks the simdebug build refuses to run it.

// TestDebugCatchesBrokenLookahead is the headline causality test: the
// model's cross-shard sends honor the real 40ps link latency, but the
// group is told (via the CI canary's UnsafeScaleLookahead hook) that
// 160ps is safe. The first in-window send must trip the sender-side
// lookahead assert — in a release build the same run would let shard 1
// execute past the unreceived handoff and diverge from the single-heap
// reference.
func TestDebugCatchesBrokenLookahead(t *testing.T) {
	const realLatency = Time(40)
	g := NewShardGroup(1, 2, realLatency)
	g.UnsafeScaleLookahead(4)
	dst := g.Shard(1).Tag("rx")
	g.Shard(0).Tag("tx").AtP(0, -1, func() {
		// Sent with the honest latency: legal under lookahead=40,
		// a causality violation under the inflated claim of 160.
		g.Post(0, 1, g.Shard(0).Now()+realLatency, -2, dst.Label(), func() {})
	})
	mustPanic(t, "violates lookahead", func() { g.Run() })
}

// TestDebugCatchesLateHandoff exercises the receiver-side defense in
// depth: a handoff that was legal when posted but arrives behind the
// destination clock (here forced by corrupting the clock directly, the
// only way to get past the sender-side assert) must be refused at
// delivery.
func TestDebugCatchesLateHandoff(t *testing.T) {
	g := NewShardGroup(1, 2, 40)
	lbl := g.Shard(1).Tag("rx").Label()
	g.Post(0, 1, 100, -1, lbl, func() {}) // legal: sender at 0, lookahead 40
	g.shards[1].now = 200                 // shard 1 "ran past" the handoff
	mustPanic(t, "arrives behind destination shard", func() { g.deliver() })
}

// TestDebugCatchesSafeHorizonOverrun checks the barrier-side invariant:
// no shard clock may pass the round's window limit, however it got
// there. A corrupted idle shard sitting beyond the limit must be caught
// at the first barrier.
func TestDebugCatchesSafeHorizonOverrun(t *testing.T) {
	g := NewShardGroup(1, 2, 40)
	g.Shard(1).Tag("work").AtP(5, -1, func() {})
	g.shards[0].now = Time(1) << 40 // far past any window this run computes
	mustPanic(t, "safe-horizon violation", func() { g.Run() })
}

// TestDebugCatchesBadPostTargets covers the cheap structural asserts on
// Post: out-of-range shard ids and same-shard posts into the past.
func TestDebugCatchesBadPostTargets(t *testing.T) {
	g := NewShardGroup(1, 2, 40)
	lbl := g.Shard(0).Tag("x").Label()
	mustPanic(t, "bad shard ids", func() {
		g.Post(0, 7, 100, -1, lbl, func() {})
	})
	g.shards[0].now = 50
	mustPanic(t, "same-shard post at", func() {
		g.Post(0, 0, 10, -1, lbl, func() {})
	})
}
