package sim

// Label is an interned component identity for events. Labels are small
// integers indexing a per-engine string table, so stamping one on an event
// costs a 4-byte field write — no strings, no allocation — and two engines
// that intern the same names in the same order assign the same ids, which
// keeps ledger digests comparable across runs (cluster construction is
// deterministic, so interning order is too).
//
// Label zero is the unlabeled sentinel, rendered as "-".
type Label uint32

// NoLabel is the zero Label: events scheduled through the plain Engine
// methods (rather than a Tagged handle) carry it.
const NoLabel Label = 0

// unlabeledName is the string form of NoLabel.
const unlabeledName = "-"

// Tag interns name in the engine's label table and returns a Tagged handle
// that stamps every event it schedules with that label. Calling Tag twice
// with the same name returns handles carrying the same Label. Interning is
// cheap but not free (a map lookup), so components should Tag once at
// construction time and keep the handle, not Tag per event.
func (e *Engine) Tag(name string) Tagged {
	if e.labelIDs == nil {
		e.labels = append(e.labels, unlabeledName)
		e.labelIDs = map[string]Label{unlabeledName: NoLabel}
	}
	id, ok := e.labelIDs[name]
	if !ok {
		id = Label(len(e.labels))
		e.labels = append(e.labels, name)
		e.labelIDs[name] = id
	}
	return Tagged{Engine: e, label: id}
}

// Labels returns a copy of the engine's label table, indexed by Label.
// Index 0 is always the unlabeled sentinel "-". The ledger embeds this
// table in its output so digests (which hash label ids) can be rendered
// with names.
func (e *Engine) Labels() []string {
	if len(e.labels) == 0 {
		return []string{unlabeledName}
	}
	out := make([]string, len(e.labels))
	copy(out, e.labels)
	return out
}

// LabelName returns the interned name for l, or "-" for NoLabel and any
// id the engine never issued.
func (e *Engine) LabelName(l Label) string {
	if int(l) < len(e.labels) {
		return e.labels[l]
	}
	return unlabeledName
}

// Tagged is an Engine handle that stamps a component label on everything it
// schedules. It embeds the engine, so a component that stores one keeps the
// full Engine API (Now, RNG, Cancel, Run, ...) through promotion; only the
// scheduling entry points are shadowed to add the label. Tagged is a small
// value (pointer + id): pass and store it by value.
//
// Call sites that must hand the raw engine to an API taking *Engine
// (Future.Complete, Resource.Acquire, ...) use the embedded Engine field
// directly: t.Engine.
type Tagged struct {
	*Engine
	label Label
}

// Label returns the interned label this handle stamps on events.
func (t Tagged) Label() Label { return t.label }

// LabelName returns the string form of the handle's label.
func (t Tagged) LabelName() string { return t.Engine.LabelName(t.label) }

// Retag returns a handle on the same engine carrying a different label.
// Components layered on another component's engine handle (a transport on
// an endpoint, say) use it to claim their own identity in the profile.
func (t Tagged) Retag(name string) Tagged { return t.Engine.Tag(name) }

// Schedule runs fn after delay d, stamped with the handle's label.
//
//rvmalint:hot
func (t Tagged) Schedule(d Time, fn func()) *Event {
	return t.Engine.schedule(d, 0, t.label, fn)
}

// ScheduleP runs fn after delay d at the given priority, stamped with the
// handle's label.
//
//rvmalint:hot
func (t Tagged) ScheduleP(d Time, priority int, fn func()) *Event {
	return t.Engine.schedule(d, priority, t.label, fn)
}

// At runs fn at absolute time tm, stamped with the handle's label.
//
//rvmalint:hot
func (t Tagged) At(tm Time, fn func()) *Event {
	if tm < t.Engine.now {
		panic("sim: schedule before now")
	}
	return t.Engine.at(tm, 0, t.label, fn)
}

// AtP runs fn at absolute time tm with an explicit priority, stamped with
// the handle's label. The fabric uses it to give every packet event a
// globally unique (negative) priority, which makes cross-component event
// order a pure function of (time, priority) — the property the sharded
// engine's deterministic handoff relies on.
//
//rvmalint:hot
func (t Tagged) AtP(tm Time, priority int, fn func()) *Event {
	if tm < t.Engine.now {
		panic("sim: schedule before now")
	}
	return t.Engine.at(tm, priority, t.label, fn)
}

// ScheduleDaemonP schedules a daemon event stamped with the handle's label.
// Daemon pops are never reported to the exec observer, so the label only
// aids simdebug diagnostics.
//
//rvmalint:hot
func (t Tagged) ScheduleDaemonP(d Time, priority int, fn func()) *Event {
	ev := t.Engine.scheduleDaemonP(d, priority, fn)
	ev.label = t.label
	return ev
}

// Spawn starts a process whose wake-up events (spawn, Sleep, resumes) carry
// the handle's label.
func (t Tagged) Spawn(name string, body func(p *Process)) *Process {
	p := t.Engine.spawn(name, t.label, body)
	return p
}

// ExecObserver receives one callback per executed model event, in execution
// order, before the event's callback runs. Daemon events (telemetry riders)
// are never reported, so an observer sees the same stream whether or not
// instrumentation daemons are attached. The callback runs on the engine
// goroutine; implementations must not schedule events, draw from the RNG,
// or mutate model state — the ledger treats this as a read-only wiretap on
// the pop stream.
type ExecObserver interface {
	ObserveExec(seq uint64, at Time, priority int, label Label)
}

// SetExecObserver attaches obs to the engine's execution stream (nil
// detaches). The disabled path costs one nil-check per event and allocates
// nothing, so model results are byte-identical with the observer on or off:
// the observer only reads fields every pop already carries.
func (e *Engine) SetExecObserver(obs ExecObserver) { e.execObs = obs }
