package sim

// RNG is a small, fast, deterministic random number generator
// (xorshift128+ with a splitmix64-seeded state). The simulation uses it for
// adaptive-routing tie-breaks and benchmark run-to-run jitter; determinism
// for a given seed is what makes every experiment reproducible, so model
// code must never fall back to math/rand's global source.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed nonzero state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a sample from a normal distribution with the given mean
// and standard deviation, using the Box-Muller transform (one branch).
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Marsaglia polar method, deterministic and allocation-free.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := sqrt(-2 * ln(s) / s)
			return mean + stddev*u*m
		}
	}
}

// Jitter returns d scaled by a factor drawn uniformly from
// [1-frac, 1+frac]. It never returns a negative duration.
func (r *RNG) Jitter(d Time, frac float64) Time {
	if frac <= 0 || d == 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return ScaleF(d, f)
}

// SeedFor derives a substream seed from a base seed and a component path
// (a kind string plus numeric ids, e.g. SeedFor(seed, "fault", dst)). Each
// component owning its own RNG — rather than sharing one engine stream — is
// what makes random draws a function of the component's own history instead
// of global execution order, so a run partitioned across shards draws the
// same numbers as its single-heap twin. The fold is FNV-1a over the path
// followed by a splitmix64 finalizer, so nearby ids land far apart.
func SeedFor(base uint64, kind string, ids ...int) uint64 {
	const (
		fnvOffset uint64 = 14695981039346656037
		fnvPrime  uint64 = 1099511628211
	)
	h := fnvOffset ^ base
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= fnvPrime
	}
	for _, id := range ids {
		v := uint64(int64(id))
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Minimal local math helpers so the RNG has no dependencies that could
// tempt callers into importing math/rand alongside it.

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 32; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func ln(x float64) float64 {
	// ln via atanh series after range reduction x = m * 2^k, m in [0.5, 1).
	if x <= 0 {
		return 0
	}
	k := 0
	for x >= 1 {
		x /= 2
		k++
	}
	for x < 0.5 {
		x *= 2
		k--
	}
	// x in [0.5, 1); ln(x) = 2*atanh((x-1)/(x+1))
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 0; i < 30; i++ {
		sum += term / float64(2*i+1)
		term *= y2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}
