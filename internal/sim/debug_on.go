//go:build simdebug

package sim

// DebugEnabled reports whether the simdebug runtime invariant layer is
// compiled in. It is a constant so that guarded checks are dead-code
// eliminated entirely in normal builds:
//
//	if sim.DebugEnabled {
//		sim.Assertf(cond, "...", args...)
//	}
//
// Build with `go test -tags simdebug ./...` (or any -tags simdebug
// build) to enable every invariant check in the kernel and the model
// packages layered on top of it.
const DebugEnabled = true
