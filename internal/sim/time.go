// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role SST (the Structural Simulation Toolkit) plays in
// the RVMA paper: it owns virtual time and executes events in a strict
// (time, priority, sequence) order so that every simulation run is exactly
// reproducible. Time is kept as an integer count of picoseconds, which gives
// the 200 ps resolution the paper's simulations used ("5 billion updates per
// simulated second") with no floating-point drift.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
//
// A signed 64-bit picosecond clock covers about 106 days of simulated time,
// far beyond any experiment in this repository.
type Time int64

// Duration units. These mirror time.Duration's constants but are resolved
// at picosecond granularity because network serialization at 2 Tbps needs
// sub-nanosecond precision (one byte at 2 Tbps is 4 ps).
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It is used as the
// "never" sentinel by schedulers and resource models.
const MaxTime Time = math.MaxInt64

// Picoseconds returns the raw picosecond count as a float64. Exact for
// magnitudes below 2^53 ps (~2.5 simulated hours), which is why the
// shard-set telemetry merge sums ps in float64 and divides once at the
// edge: integer-exact addition is order-free, so the merged value is
// independent of how shards were partitioned.
func (t Time) Picoseconds() float64 { return float64(t) }

// Nanoseconds returns the time as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with a unit chosen for readability.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "never"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromNanos converts a floating-point nanosecond count into a Time,
// rounding to the nearest picosecond.
//
//rvmalint:allow psunits -- sanctioned float->ps boundary: the rounding policy is explicit here
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// FromMicros converts a floating-point microsecond count into a Time.
//
//rvmalint:allow psunits -- sanctioned float->ps boundary: the rounding policy is explicit here
func FromMicros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// Scale returns n*per, panicking on int64 overflow instead of silently
// wrapping. Model code sizing a cost by an element or page count must use
// this rather than a bare multiplication: at 8k-node scale a payload size
// times a per-byte cost can exceed 106 days of picoseconds, and a wrapped
// negative delay would corrupt the event queue invisibly. (The psunits
// analyzer rejects unguarded Time multiplications and points here.)
func Scale(n int, per Time) Time {
	if n == 0 || per == 0 {
		return 0
	}
	//rvmalint:allow psunits -- this is the checked multiply the analyzer directs model code to
	out := Time(n) * per
	if out/per != Time(n) {
		panic(fmt.Sprintf("sim: Scale(%d, %d) overflows int64 picoseconds", n, per))
	}
	return out
}

// ScaleF returns t scaled by factor, truncating toward zero (the same
// policy as a direct float->int conversion, so existing call sites keep
// bit-identical results) and clamping to [0, MaxTime]. It is the one
// sanctioned way to apply a fractional factor (jitter, link-speed
// derating, host-noise multipliers) to a duration; everywhere else,
// float conversions of Time are rejected by the psunits analyzer.
//
//rvmalint:allow psunits -- sanctioned ps<->float boundary: truncation and clamping are explicit here
func ScaleF(t Time, factor float64) Time {
	f := float64(t) * factor
	if f <= 0 || math.IsNaN(f) {
		return 0
	}
	if f >= float64(MaxTime) {
		return MaxTime
	}
	return Time(f)
}

// Ratio returns a/b as a float, the sanctioned way to express one
// duration as a fraction of another (utilization, blame shares). The
// unit cancels, so this is not a precision-losing time conversion.
//
//rvmalint:allow psunits -- dimensionless ratio: the ps unit cancels between numerator and denominator
func Ratio(a, b Time) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// SerializationTime returns the time needed to move size bytes over a
// channel running at gbps gigabits per second. It rounds up to a whole
// picosecond so that a nonzero payload always consumes nonzero time.
//
//rvmalint:allow psunits -- sanctioned float->ps boundary: ceiling rounding is the explicit policy
func SerializationTime(size int, gbps float64) Time {
	if size <= 0 || gbps <= 0 {
		return 0
	}
	ps := float64(size) * 8.0 / gbps * 1000.0 // bits / (Gbit/s) => ns; *1000 => ps
	t := Time(math.Ceil(ps))
	if t < 1 {
		t = 1
	}
	return t
}
