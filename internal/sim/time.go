// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel plays the role SST (the Structural Simulation Toolkit) plays in
// the RVMA paper: it owns virtual time and executes events in a strict
// (time, priority, sequence) order so that every simulation run is exactly
// reproducible. Time is kept as an integer count of picoseconds, which gives
// the 200 ps resolution the paper's simulations used ("5 billion updates per
// simulated second") with no floating-point drift.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
//
// A signed 64-bit picosecond clock covers about 106 days of simulated time,
// far beyond any experiment in this repository.
type Time int64

// Duration units. These mirror time.Duration's constants but are resolved
// at picosecond granularity because network serialization at 2 Tbps needs
// sub-nanosecond precision (one byte at 2 Tbps is 4 ps).
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It is used as the
// "never" sentinel by schedulers and resource models.
const MaxTime Time = math.MaxInt64

// Nanoseconds returns the time as a floating-point nanosecond count.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with a unit chosen for readability.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "never"
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// FromNanos converts a floating-point nanosecond count into a Time,
// rounding to the nearest picosecond.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// FromMicros converts a floating-point microsecond count into a Time.
func FromMicros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// SerializationTime returns the time needed to move size bytes over a
// channel running at gbps gigabits per second. It rounds up to a whole
// picosecond so that a nonzero payload always consumes nonzero time.
func SerializationTime(size int, gbps float64) Time {
	if size <= 0 || gbps <= 0 {
		return 0
	}
	ps := float64(size) * 8.0 / gbps * 1000.0 // bits / (Gbit/s) => ns; *1000 => ps
	t := Time(math.Ceil(ps))
	if t < 1 {
		t = 1
	}
	return t
}
