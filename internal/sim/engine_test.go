package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1.000ns"},
		{1500 * Nanosecond, "1.500us"},
		{Microsecond, "1.000us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
		{MaxTime, "never"},
		{-Nanosecond, "-1.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	// 1000 bytes at 100 Gbps = 8000 bits / 100e9 bps = 80 ns.
	if got := SerializationTime(1000, 100); got != 80*Nanosecond {
		t.Errorf("SerializationTime(1000, 100) = %v, want 80ns", got)
	}
	// One byte at 2 Tbps = 4 ps.
	if got := SerializationTime(1, 2000); got != 4*Picosecond {
		t.Errorf("SerializationTime(1, 2000) = %v, want 4ps", got)
	}
	if got := SerializationTime(0, 100); got != 0 {
		t.Errorf("zero bytes should serialize in zero time, got %v", got)
	}
	// Tiny payloads still consume at least one picosecond.
	if got := SerializationTime(1, 1e9); got != 1 {
		t.Errorf("sub-picosecond serialization should round up to 1ps, got %v", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*Nanosecond {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events must run FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestEnginePriority(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.ScheduleP(Nanosecond, 5, func() { order = append(order, "low") })
	e.ScheduleP(Nanosecond, -5, func() { order = append(order, "high") })
	e.Run()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority order = %v", order)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.Schedule(Nanosecond, tick)
		}
	}
	e.Schedule(0, tick)
	end := e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if end != 9*Nanosecond {
		t.Fatalf("end = %v, want 9ns", end)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.Schedule(Nanosecond, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("event should report canceled")
	}
	// Double cancel is a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine(1)
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.Schedule(Time(i)*Nanosecond, func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, d := range []Time{Nanosecond, Microsecond, Millisecond} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	end := e.RunUntil(Microsecond)
	if end != Microsecond {
		t.Fatalf("RunUntil returned %v, want 1us", end)
	}
	if len(ran) != 2 {
		t.Fatalf("executed %d events before limit, want 2", len(ran))
	}
	e.Run()
	if len(ran) != 3 {
		t.Fatalf("remaining events did not run on resume: %v", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count after Stop = %d, want 5", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	//rvmalint:allow simtime -- deliberately negative to test the panic
	NewEngine(1).Schedule(-1, func() {})
}

func TestEngineAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past should panic")
			}
		}()
		e.At(Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(Nanosecond, func() { count++ })
	e.Schedule(2*Nanosecond, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count = %d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count = %d", count)
	}
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.EventsScheduled() != 7 || e.EventsExecuted() != 7 {
		t.Fatalf("scheduled = %d executed = %d, want 7/7",
			e.EventsScheduled(), e.EventsExecuted())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine(1)
	if e.NextEventTime() != MaxTime {
		t.Fatal("empty queue should report MaxTime")
	}
	ev := e.Schedule(5*Nanosecond, func() {})
	e.Schedule(9*Nanosecond, func() {})
	if e.NextEventTime() != 5*Nanosecond {
		t.Fatalf("next = %v, want 5ns", e.NextEventTime())
	}
	e.Cancel(ev)
	if e.NextEventTime() != 9*Nanosecond {
		t.Fatalf("next after cancel = %v, want 9ns", e.NextEventTime())
	}
}

// Property: for any set of non-negative delays, the engine executes events
// in non-decreasing time order and ends at the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(42)
		var seen []Time
		var max Time
		for _, d := range delays {
			d := Time(d)
			if d > max {
				max = d
			}
			e.Schedule(d, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two engines with the same seed produce identical RNG streams.
func TestRNGDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 100; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Errorf("sample mean = %v, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Errorf("sample variance = %v, want ~4", variance)
	}
}

func TestRNGJitter(t *testing.T) {
	r := NewRNG(3)
	base := 100 * Nanosecond
	for i := 0; i < 1000; i++ {
		v := r.Jitter(base, 0.1)
		if v < 90*Nanosecond || v > 110*Nanosecond {
			t.Fatalf("jitter out of +-10%% band: %v", v)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-fraction jitter must be identity")
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(5)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("shuffle lost elements: %d", len(seen))
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("link")
	e.Schedule(0, func() {
		end1 := r.Acquire(e, 10*Nanosecond)
		end2 := r.Acquire(e, 10*Nanosecond)
		if end1 != 10*Nanosecond {
			t.Errorf("first acquisition ends at %v, want 10ns", end1)
		}
		if end2 != 20*Nanosecond {
			t.Errorf("second acquisition must queue: ends at %v, want 20ns", end2)
		}
	})
	e.Run()
	if r.Uses() != 2 || r.BusyTime() != 20*Nanosecond {
		t.Fatalf("uses = %d busy = %v", r.Uses(), r.BusyTime())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("link")
	e.Schedule(0, func() { r.Acquire(e, 5*Nanosecond) })
	e.Schedule(100*Nanosecond, func() {
		end := r.Acquire(e, 5*Nanosecond)
		if end != 105*Nanosecond {
			t.Errorf("after idle gap, acquisition ends at %v, want 105ns", end)
		}
		if got := r.Backlog(e); got != 5*Nanosecond {
			t.Errorf("backlog = %v, want 5ns", got)
		}
	})
	e.Run()
}

func TestResourceAcquireAt(t *testing.T) {
	r := NewResource("xbar")
	end := r.AcquireAt(50*Nanosecond, 10*Nanosecond)
	if end != 60*Nanosecond {
		t.Fatalf("end = %v, want 60ns", end)
	}
	// A later request arriving earlier than freeAt still queues.
	end2 := r.AcquireAt(55*Nanosecond, 10*Nanosecond)
	if end2 != 70*Nanosecond {
		t.Fatalf("end2 = %v, want 70ns", end2)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Process) {
		p.Sleep(42 * Nanosecond)
		wake = p.Now()
	})
	e.Run()
	if wake != 42*Nanosecond {
		t.Fatalf("woke at %v, want 42ns", wake)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a0")
		p.Sleep(10 * Nanosecond)
		order = append(order, "a1")
		p.Sleep(20 * Nanosecond)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b0")
		p.Sleep(15 * Nanosecond)
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcessWaitFuture(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture()
	var got Time
	e.Spawn("waiter", func(p *Process) {
		p.Wait(f)
		got = p.Now()
	})
	e.Schedule(77*Nanosecond, func() { f.Complete(e, "x") })
	e.Run()
	if got != 77*Nanosecond {
		t.Fatalf("waiter resumed at %v, want 77ns", got)
	}
	if f.Value() != "x" || f.CompletedAt() != 77*Nanosecond {
		t.Fatalf("future value/time wrong: %v at %v", f.Value(), f.CompletedAt())
	}
}

func TestProcessWaitCompletedFuture(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture()
	done := false
	e.Schedule(0, func() { f.Complete(e, nil) })
	e.Schedule(Nanosecond, func() {
		e.Spawn("late", func(p *Process) {
			p.Wait(f) // must not block
			done = true
		})
	})
	e.Run()
	if !done {
		t.Fatal("waiting on an already-complete future must not block")
	}
}

func TestProcessWaitAll(t *testing.T) {
	e := NewEngine(1)
	f1, f2, f3 := NewFuture(), NewFuture(), NewFuture()
	var got Time
	e.Spawn("w", func(p *Process) {
		p.WaitAll(f1, f2, f3)
		got = p.Now()
	})
	e.Schedule(5*Nanosecond, func() { f2.Complete(e, nil) })
	e.Schedule(9*Nanosecond, func() { f1.Complete(e, nil) })
	e.Schedule(3*Nanosecond, func() { f3.Complete(e, nil) })
	e.Run()
	if got != 9*Nanosecond {
		t.Fatalf("WaitAll resumed at %v, want 9ns (latest completion)", got)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	f := NewFuture()
	e.Schedule(0, func() {
		f.Complete(e, nil)
		defer func() {
			if recover() == nil {
				t.Error("double Complete should panic")
			}
		}()
		f.Complete(e, nil)
	})
	e.Run()
}

func TestGate(t *testing.T) {
	e := NewEngine(1)
	g := NewGate(e, 3)
	opened := Time(-1)
	g.Future().OnComplete(func() { opened = e.Now() })
	e.Schedule(Nanosecond, func() { g.Arrive(e) })
	e.Schedule(2*Nanosecond, func() { g.Arrive(e) })
	e.Schedule(3*Nanosecond, func() { g.Arrive(e) })
	e.Run()
	if opened != 3*Nanosecond {
		t.Fatalf("gate opened at %v, want 3ns", opened)
	}
}

func TestGateZeroCountOpensImmediately(t *testing.T) {
	e := NewEngine(1)
	g := NewGate(e, 0)
	if !g.Future().Done() {
		t.Fatal("zero-count gate should be open immediately")
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("boom", func(p *Process) {
		p.Sleep(Nanosecond)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic should propagate to engine")
		}
	}()
	e.Run()
}

func TestHeartbeat(t *testing.T) {
	e := NewEngine(1)
	var beats int
	var lastExecuted uint64
	e.SetHeartbeat(3, func() {
		beats++
		lastExecuted = e.EventsExecuted()
	})
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i)*Nanosecond, func() {})
	}
	e.Run()
	if beats != 3 {
		t.Fatalf("beats = %d, want 3 (10 events / every 3)", beats)
	}
	if lastExecuted != 9 {
		t.Fatalf("last heartbeat at executed = %d, want 9", lastExecuted)
	}
	// Disabling stops further callbacks.
	e.SetHeartbeat(0, nil)
	e.Schedule(Nanosecond, func() {})
	e.Schedule(Nanosecond, func() {})
	e.Run()
	if beats != 3 {
		t.Fatalf("beats after disable = %d, want 3", beats)
	}
}

func TestDaemonEventsInvisibleToModel(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*Microsecond, func() {})
	}
	var daemonRuns int
	var reschedule func()
	reschedule = func() {
		daemonRuns++
		e.ScheduleDaemonP(Microsecond, 1<<20, reschedule)
	}
	e.ScheduleDaemonP(Microsecond, 1<<20, reschedule)

	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5 model events (daemon excluded)", e.Pending())
	}
	end := e.Run()
	// The model's last event is at 5µs. Once it has popped, only daemons
	// remain, so the daemon pending at 5µs never executes: daemons run at
	// 1..4µs only and the clock stops on the model's end.
	if end != 5*Microsecond {
		t.Fatalf("run ended at %v, want the model's last event at 5.000us", end)
	}
	if daemonRuns != 4 {
		t.Fatalf("daemon ran %d times, want 4 (never once the model drained)", daemonRuns)
	}
	if e.EventsExecuted() != 5 || e.EventsScheduled() != 5 {
		t.Fatalf("executed/scheduled = %d/%d, want 5/5 (daemons uncounted)",
			e.EventsExecuted(), e.EventsScheduled())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0 (trailing daemon excluded)", e.Pending())
	}
}

func TestDaemonOnlyQueueNeverRuns(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.ScheduleDaemonP(Microsecond, 0, func() { ran = true })
	if end := e.Run(); end != 0 {
		t.Fatalf("daemon-only run advanced the clock to %v", end)
	}
	if ran {
		t.Fatal("daemon executed with no model events queued")
	}
}

func TestCancelDaemonEvent(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(2*Microsecond, func() {})
	ev := e.ScheduleDaemonP(Microsecond, 0, func() { t.Fatal("canceled daemon ran") })
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
}
