//go:build simdebug

package sim

import (
	"strings"
	"testing"
)

// These tests only build under the simdebug tag; they prove the
// invariant layer detects corruption rather than merely existing.

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a simdebug panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want message containing %q", r, substr)
		}
	}()
	fn()
}

func TestAssertfPanicsWithPrefix(t *testing.T) {
	mustPanic(t, "simdebug: invariant violated: count 3", func() {
		Assertf(false, "count %d", 3)
	})
	Assertf(true, "never evaluated")
}

func TestDebugCatchesClockCorruption(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Nanosecond, func() {})
	// Force the clock past the pending event: the pop check must see
	// causality running backward.
	e.now = 20 * Nanosecond
	mustPanic(t, "precedes engine clock", func() { e.Step() })
}

func TestDebugCatchesHeapCorruption(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 8; i++ {
		e.Schedule(Time(i)*Nanosecond, func() {})
	}
	// Swap two events without fixing their indices: the structural sweep
	// must notice the broken bookkeeping.
	e.queue[0], e.queue[len(e.queue)-1] = e.queue[len(e.queue)-1], e.queue[0]
	mustPanic(t, "heap", func() { e.debugVerifyHeap() })
}

func TestDebugEnabledUnderTag(t *testing.T) {
	if !DebugEnabled {
		t.Fatal("DebugEnabled must be true when built with -tags simdebug")
	}
}
