package telemetry

import (
	"fmt"
	"io"

	"rvma/internal/sim"
	"rvma/internal/trace"
)

// FlightRecorder turns a bounded trace ring into a crash-context dump:
// the last N model events (with trace categories and packet ids) are
// written with a reason line when a failure trigger fires, so a panic or
// an anomaly comes with its recent causal history instead of a bare stack.
//
// Three triggers are supported:
//   - Arm: a simdebug invariant violation (any sim.Assertf failure);
//   - FlightRecorder-aware NACK-burst watching via WatchNACKBurst;
//   - explicit Dump from a cancellation path (cmd/rvmasim on SIGINT).
//
// A recorder dumps at most once; later triggers are ignored so a panic
// cascade cannot interleave dumps.
type FlightRecorder struct {
	tr     *trace.Tracer
	w      io.Writer
	dumped bool
	reason string
}

// NewFlightRecorder wraps an existing tracer ring. The tracer should have
// its categories enabled (EnableAll for full context); its capacity is the
// recorder depth. Dumps go to w.
func NewFlightRecorder(tr *trace.Tracer, w io.Writer) *FlightRecorder {
	return &FlightRecorder{tr: tr, w: w}
}

// Dump writes the recorder contents with the given reason, once. It
// returns true if this call performed the dump, false if the recorder is
// nil or already dumped.
func (r *FlightRecorder) Dump(reason string) bool {
	if r == nil || r.dumped {
		return false
	}
	r.dumped = true
	r.reason = reason
	fmt.Fprintf(r.w, "=== flight recorder dump: %s ===\n", reason)
	r.tr.Dump(r.w)
	fmt.Fprintln(r.w, "=== end flight recorder dump ===")
	return true
}

// Dumped reports whether the recorder has fired, and with what reason.
func (r *FlightRecorder) Dumped() (bool, string) {
	if r == nil {
		return false, ""
	}
	return r.dumped, r.reason
}

// Arm installs the recorder as the simdebug invariant hook: any failing
// sim.Assertf dumps the ring (with the violation message as the reason)
// before the panic unwinds. Only one recorder can be armed at a time;
// Disarm clears the hook.
func (r *FlightRecorder) Arm() {
	if r == nil {
		return
	}
	sim.SetInvariantHook(func(msg string) {
		r.Dump("simdebug invariant violated: " + msg)
	})
}

// Disarm clears the simdebug invariant hook.
func (r *FlightRecorder) Disarm() { sim.SetInvariantHook(nil) }

// WatchNACKBurst attaches a per-sample-window NACK-rate trigger: total
// must return the cumulative NACK count; when the count grows by at least
// burst within one sample window, the recorder dumps. The watcher only
// reads the cumulative counter, so it is downsample-safe and does not
// perturb the model.
func (r *FlightRecorder) WatchNACKBurst(s *Sampler, total func() float64, burst float64) {
	if r == nil || s == nil || total == nil || burst <= 0 {
		return
	}
	prev := 0.0
	s.OnSample(func(at sim.Time) {
		cur := total()
		if cur-prev >= burst {
			r.Dump(fmt.Sprintf("NACK burst: %g NACKs within one %v sample window ending at t=%v",
				cur-prev, s.Interval(), at))
		}
		prev = cur
	})
}
