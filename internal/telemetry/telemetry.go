// Package telemetry provides time-resolved observability for simulation
// runs: a deterministic in-sim sampler that snapshots registered probes on
// a fixed sim-time cadence into bounded columnar time-series, CSV and
// heatmap exporters, and a causal flight recorder that dumps the last N
// model events with context when a run fails.
//
// Sampling is itself a simulation process: the sampler schedules its own
// tick events on the engine. Determinism therefore demands that sampling
// be invisible to the model — a probe must only read state, never schedule
// events, draw from the RNG, acquire resources, or mutate anything the
// model can observe. Ticks ride on the engine's daemon events
// (sim.ScheduleDaemonP): daemons never keep a run alive or advance its
// clock past the last model event, and are excluded from the model-facing
// event counters, so a run's results — makespan, final clock, metrics
// snapshots — are byte-identical with sampling enabled or disabled; the
// same-seed regression test in internal/harness holds runs to exactly
// that. Ticks use a large scheduling priority so a sample always observes
// the state *after* every model event at its timestamp.
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"rvma/internal/sim"
)

// Probe reads one scalar from model state at sample time. Probes must be
// pure readers of the model: no event scheduling, no RNG draws, no
// resource acquisition, no writes to model state. A probe may keep private
// state of its own (e.g. the previous busy-time for windowed utilization).
type Probe func() float64

// tickPriority orders sampler ticks after every model event sharing their
// timestamp, so a sample sees the post-event state of its instant. Model
// code uses small priorities (single digits); anything at or above this
// value would race the sampler and is not used by the models.
const tickPriority = 1 << 20

// DefaultMaxSamples bounds a sampler's stored rows. Hitting the bound
// halves the stored history (dropping every other row) and doubles the
// sampling interval going forward, so memory stays bounded for arbitrarily
// long runs at the cost of time resolution — never an unbounded append.
const DefaultMaxSamples = 4096

// Sampler snapshots registered probes into columnar time-series on a
// fixed sim-time cadence. The zero value is not usable; use New. All
// methods on a nil *Sampler are no-ops (mirroring the registry/tracer
// convention), so model wiring costs one nil check when detached.
type Sampler struct {
	eng        *sim.Engine
	interval   sim.Time
	maxSamples int

	names  []string // registration order; export sorts
	probes []Probe

	times []sim.Time  // sample timestamps, one per stored row
	cols  [][]float64 // cols[i] parallels probes[i]; len == len(times)

	onSample []func(at sim.Time)

	started    bool
	ticks      uint64 // rows recorded, including ones later downsampled away
	dropped    uint64 // rows discarded by downsampling
	compressed int    // number of downsample passes
}

// New returns a sampler on eng with the given tick interval (sim time).
func New(eng *sim.Engine, interval sim.Time) *Sampler {
	s := NewUnbound(interval)
	s.Bind(eng)
	return s
}

// NewUnbound returns a sampler not yet bound to an engine, for callers
// that configure sampling before the simulation exists (the harness
// builds one per figure cell). Bind — which Cluster.RegisterTelemetry
// does — must happen before Start.
func NewUnbound(interval sim.Time) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("telemetry: non-positive sample interval %v", interval))
	}
	return &Sampler{interval: interval, maxSamples: DefaultMaxSamples}
}

// Bind attaches the sampler to the engine it will schedule its ticks on.
// Rebinding to a different engine is a bug and panics.
func (s *Sampler) Bind(eng *sim.Engine) {
	if s == nil {
		return
	}
	if s.eng != nil && s.eng != eng {
		panic("telemetry: sampler bound to two engines")
	}
	s.eng = eng
}

// SetMaxSamples bounds stored rows (minimum 2). Must be called before
// Start.
func (s *Sampler) SetMaxSamples(n int) {
	if s == nil {
		return
	}
	if s.started {
		panic("telemetry: SetMaxSamples after Start")
	}
	if n < 2 {
		n = 2
	}
	s.maxSamples = n
}

// Register adds a named probe column. Names must be unique; columns are
// exported in sorted-name order regardless of registration order. Must be
// called before Start.
func (s *Sampler) Register(name string, p Probe) {
	if s == nil {
		return
	}
	if s.started {
		panic(fmt.Sprintf("telemetry: Register(%q) after Start", name))
	}
	for _, n := range s.names {
		if n == name {
			panic(fmt.Sprintf("telemetry: duplicate probe %q", name))
		}
	}
	s.names = append(s.names, name)
	s.probes = append(s.probes, p)
	s.cols = append(s.cols, nil)
}

// OnSample registers fn to run after each recorded sample row, at the
// sample's sim time. Callbacks observe cumulative probe state between
// ticks (the NACK-burst watcher lives here); like probes they must not
// perturb the model.
func (s *Sampler) OnSample(fn func(at sim.Time)) {
	if s == nil || fn == nil {
		return
	}
	s.onSample = append(s.onSample, fn)
}

// Start schedules the first tick one interval from now. Ticks are daemon
// events: the engine never executes a tick once only daemons remain
// queued, so an attached sampler cannot keep Run alive or extend the
// run's clock.
func (s *Sampler) Start() {
	if s == nil || s.started {
		return
	}
	if s.eng == nil {
		panic("telemetry: Start before Bind")
	}
	s.started = true
	s.eng.ScheduleDaemonP(s.interval, tickPriority, s.tick)
}

func (s *Sampler) tick() {
	s.record()
	s.eng.ScheduleDaemonP(s.interval, tickPriority, s.tick)
}

func (s *Sampler) record() {
	if len(s.times) >= s.maxSamples {
		s.compress()
	}
	now := s.eng.Now()
	s.times = append(s.times, now)
	for i, p := range s.probes {
		s.cols[i] = append(s.cols[i], p())
	}
	s.ticks++
	for _, fn := range s.onSample {
		fn(now)
	}
}

// compress halves the stored history (keeping every other row, oldest
// first) and doubles the tick interval, so row count and memory stay
// bounded while the series still spans the whole run.
func (s *Sampler) compress() {
	keep := (len(s.times) + 1) / 2
	for i := 0; i < keep; i++ {
		s.times[i] = s.times[2*i]
	}
	s.dropped += uint64(len(s.times) - keep)
	s.times = s.times[:keep]
	for c := range s.cols {
		col := s.cols[c]
		for i := 0; i < keep; i++ {
			col[i] = col[2*i]
		}
		s.cols[c] = col[:keep]
	}
	s.interval *= 2
	s.compressed++
}

// Interval returns the current tick interval (doubled by each downsample
// pass).
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// Samples returns the number of stored rows.
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Ticks returns the number of samples ever recorded, including rows later
// discarded by downsampling.
func (s *Sampler) Ticks() uint64 {
	if s == nil {
		return 0
	}
	return s.ticks
}

// Dropped returns the number of rows discarded by downsampling.
func (s *Sampler) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Columns returns the probe names in export (sorted) order.
func (s *Sampler) Columns() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.names))
	copy(out, s.names)
	sort.Strings(out)
	return out
}

// sortedIndex returns probe indices ordered by name, optionally filtered
// to names with the given prefix.
func (s *Sampler) sortedIndex(prefix string) []int {
	idx := make([]int, 0, len(s.names))
	for i, n := range s.names {
		if prefix == "" || hasPrefix(n, prefix) {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return s.names[idx[a]] < s.names[idx[b]] })
	return idx
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Column returns the stored values of a named probe (nil if unknown).
func (s *Sampler) Column(name string) []float64 {
	if s == nil {
		return nil
	}
	for i, n := range s.names {
		if n == name {
			out := make([]float64, len(s.cols[i]))
			copy(out, s.cols[i])
			return out
		}
	}
	return nil
}

// WriteCSV emits the time-series: header "time_ns,<sorted names>", then
// one row per stored sample. Output is byte-deterministic for a given
// sampler state.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return fmt.Errorf("telemetry: nil sampler")
	}
	idx := s.sortedIndex("")
	if _, err := io.WriteString(w, "time_ns"); err != nil {
		return err
	}
	for _, i := range idx {
		if _, err := fmt.Fprintf(w, ",%s", s.names[i]); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for r := range s.times {
		if _, err := fmt.Fprintf(w, "%.0f", s.times[r].Nanoseconds()); err != nil {
			return err
		}
		for _, i := range idx {
			if _, err := fmt.Fprintf(w, ",%g", s.cols[i][r]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteHeatmapCSV emits a matrix view of the probe columns whose names
// start with prefix (e.g. "fabric.sw"): one row per matching probe (sorted
// by name, so zero-padded switch names order numerically), one column per
// sample time. This is the per-switch × time congestion heatmap; feed it
// straight to a matrix plotter.
func (s *Sampler) WriteHeatmapCSV(w io.Writer, prefix string) error {
	if s == nil {
		return fmt.Errorf("telemetry: nil sampler")
	}
	idx := s.sortedIndex(prefix)
	if len(idx) == 0 {
		return fmt.Errorf("telemetry: no probes with prefix %q", prefix)
	}
	if _, err := io.WriteString(w, "series"); err != nil {
		return err
	}
	for _, t := range s.times {
		if _, err := fmt.Fprintf(w, ",%.0f", t.Nanoseconds()); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, i := range idx {
		if _, err := io.WriteString(w, s.names[i]); err != nil {
			return err
		}
		for r := range s.times {
			if _, err := fmt.Fprintf(w, ",%g", s.cols[i][r]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
