package telemetry

import (
	"strings"
	"testing"

	"rvma/internal/sim"
)

// pulseModel schedules n self-rescheduling events spaced gap apart, each
// drawing from the RNG and appending (time, draw) to the returned log —
// a minimal model whose execution order and RNG stream expose any
// perturbation from an attached sampler.
func pulseModel(eng *sim.Engine, n int, gap sim.Time) *[]float64 {
	log := &[]float64{}
	var step func()
	left := n
	step = func() {
		//rvmalint:allow psunits -- test-only: the pulse log records raw picosecond values for exact replay comparison
		*log = append(*log, float64(eng.Now()), eng.RNG().Float64())
		left--
		if left > 0 {
			eng.Schedule(gap, step)
		}
	}
	eng.Schedule(gap, step)
	return log
}

func TestSamplerRecordsRows(t *testing.T) {
	eng := sim.NewEngine(1)
	pulseModel(eng, 100, sim.Microsecond)
	s := New(eng, 10*sim.Microsecond)
	count := 0.0
	s.Register("model.events", func() float64 { count = float64(eng.EventsExecuted()); return count })
	s.Start()
	eng.Run()

	if s.Samples() == 0 {
		t.Fatal("no samples recorded")
	}
	col := s.Column("model.events")
	if len(col) != s.Samples() {
		t.Fatalf("column length %d != samples %d", len(col), s.Samples())
	}
	for i := 1; i < len(col); i++ {
		if col[i] < col[i-1] {
			t.Fatalf("cumulative probe decreased at row %d: %v -> %v", i, col[i-1], col[i])
		}
	}
}

func TestSamplerStopsWhenModelDrains(t *testing.T) {
	eng := sim.NewEngine(1)
	pulseModel(eng, 5, sim.Microsecond) // model ends at t=5µs
	s := New(eng, sim.Microsecond)
	s.Register("noop", func() float64 { return 0 })
	s.Start()
	end := eng.Run()

	// Run returned: the sampler must not have kept the queue alive, and
	// because ticks are daemon events the clock must sit exactly on the
	// last model event — not on a trailing sampler tick.
	if eng.Pending() != 0 {
		t.Fatalf("model events still pending: %d", eng.Pending())
	}
	if end != 5*sim.Microsecond {
		t.Fatalf("run ended at %v, want exactly the model's last event at 5.000us", end)
	}
}

func TestSamplerDownsamplesOnOverflow(t *testing.T) {
	eng := sim.NewEngine(1)
	pulseModel(eng, 1000, sim.Microsecond) // 1 ms of model activity
	s := New(eng, sim.Microsecond)
	s.SetMaxSamples(8)
	s.Register("noop", func() float64 { return 1 })
	s.Start()
	eng.Run()

	if s.Samples() > 8 {
		t.Fatalf("stored %d rows, cap is 8", s.Samples())
	}
	if s.Interval() <= sim.Microsecond {
		t.Fatalf("interval %v never doubled", s.Interval())
	}
	if s.Dropped() == 0 {
		t.Fatal("no rows recorded as dropped despite overflow")
	}
	if s.Ticks() != uint64(s.Samples())+s.Dropped() {
		t.Fatalf("ticks %d != stored %d + dropped %d", s.Ticks(), s.Samples(), s.Dropped())
	}
	// Timestamps must stay strictly increasing through compression.
	var prev sim.Time = -1
	for i := 0; i < s.Samples(); i++ {
		at := s.times[i]
		if at <= prev {
			t.Fatalf("row %d time %v not after %v", i, at, prev)
		}
		prev = at
	}
}

// TestSamplerDoesNotPerturbModel is the determinism core: the model's
// event order and RNG stream must be identical with sampling attached,
// detached, and at a different cadence.
func TestSamplerDoesNotPerturbModel(t *testing.T) {
	run := func(interval sim.Time) []float64 {
		eng := sim.NewEngine(42)
		log := pulseModel(eng, 200, 700*sim.Nanosecond)
		if interval > 0 {
			s := New(eng, interval)
			s.Register("pending", func() float64 { return float64(eng.Pending()) })
			s.Start()
		}
		eng.Run()
		return *log
	}
	base := run(0)
	for _, ivl := range []sim.Time{sim.Microsecond, 3 * sim.Microsecond} {
		got := run(ivl)
		if len(got) != len(base) {
			t.Fatalf("interval %v: model log length %d != baseline %d", ivl, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("interval %v: model log diverges at %d: %v != %v", ivl, i, got[i], base[i])
			}
		}
	}
}

func TestWriteCSVSortedStableColumns(t *testing.T) {
	build := func() *Sampler {
		eng := sim.NewEngine(7)
		pulseModel(eng, 30, sim.Microsecond)
		s := New(eng, 5*sim.Microsecond)
		// Registration order deliberately unsorted.
		s.Register("zeta", func() float64 { return 3 })
		s.Register("alpha", func() float64 { return 1 })
		s.Register("mid.x", func() float64 { return 2 })
		s.Start()
		eng.Run()
		return s
	}
	var a, b strings.Builder
	if err := build().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same-seed CSV output not byte-identical")
	}
	lines := strings.Split(a.String(), "\n")
	if lines[0] != "time_ns,alpha,mid.x,zeta" {
		t.Fatalf("header not sorted: %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("CSV has no data rows: %q", a.String())
	}
	if !strings.HasSuffix(lines[1], ",1,2,3") {
		t.Fatalf("row values not in sorted-column order: %q", lines[1])
	}
}

func TestWriteHeatmapCSV(t *testing.T) {
	eng := sim.NewEngine(7)
	pulseModel(eng, 30, sim.Microsecond)
	s := New(eng, 5*sim.Microsecond)
	s.Register("util.sw001", func() float64 { return 0.5 })
	s.Register("util.sw000", func() float64 { return 0.25 })
	s.Register("other", func() float64 { return 9 })
	s.Start()
	eng.Run()

	var buf strings.Builder
	if err := s.WriteHeatmapCSV(&buf, "util.sw"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 switch rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "series,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "util.sw000,0.25") || !strings.HasPrefix(lines[2], "util.sw001,0.5") {
		t.Fatalf("rows not sorted by name: %q / %q", lines[1], lines[2])
	}
	if strings.Contains(buf.String(), "other") {
		t.Fatal("non-matching probe leaked into heatmap")
	}
	if err := s.WriteHeatmapCSV(&buf, "nosuch."); err == nil {
		t.Fatal("expected error for prefix with no probes")
	}
}

func TestRegisterGuards(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(eng, sim.Microsecond)
	s.Register("a", func() float64 { return 0 })

	expectPanic(t, "duplicate", func() { s.Register("a", func() float64 { return 0 }) })
	s.Start()
	expectPanic(t, "after Start", func() { s.Register("b", func() float64 { return 0 }) })
	expectPanic(t, "after Start", func() { s.SetMaxSamples(4) })

	// Nil sampler: every method is a no-op.
	var nilS *Sampler
	nilS.Register("x", nil)
	nilS.Start()
	if nilS.Samples() != 0 || nilS.Columns() != nil {
		t.Fatal("nil sampler not inert")
	}
	if err := nilS.WriteCSV(&strings.Builder{}); err == nil {
		t.Fatal("nil sampler WriteCSV should error")
	}
}

func expectPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, substr) {
			t.Fatalf("panic = %v, want message containing %q", r, substr)
		}
	}()
	fn()
}
