// ShardSet: telemetry for sharded runs. One Sampler per shard ticks the
// same sim-time grid on its own engine (ticks are daemon events, and the
// shard group's drain rule makes "tick at t executes iff t precedes the
// final model time" hold globally, exactly as on a single heap), each
// probe reading only state its shard owns. The merged export folds the
// per-shard columns with a declared merge kind and renders through the
// ordinary Sampler writers, so the CSV bytes are identical at any shard
// count — including shards=1, which is the comparison baseline the
// determinism tests hold every other count to.
package telemetry

import (
	"fmt"
	"io"

	"rvma/internal/sim"
)

// ColKind declares how a column's per-shard samples merge into one value.
type ColKind int

const (
	// KindSum adds the per-shard samples. Use for integer-valued counters
	// and populations; integer addition is exact in any order.
	KindSum ColKind = iota
	// KindSumPS adds per-shard samples that are integer picosecond
	// quantities (probes return float64(sim.Time)); the merged value is
	// divided by 1000 at export so the column reads in nanoseconds like
	// its single-heap counterpart. Summing in integer picoseconds first
	// avoids the order-dependence of float nanosecond addition.
	KindSumPS
	// KindMax takes the maximum across shards (worst-queue style columns).
	KindMax
	// KindLocal columns live on exactly one shard (registered via
	// RegisterLocal); the merged column is that shard's, verbatim.
	KindLocal
)

// ShardSet manages one Sampler per shard plus the merge schema.
type ShardSet struct {
	samplers []*Sampler
	kinds    map[string]ColKind
}

// NewShardSet builds one unstarted sampler per shard of g, each bound to
// its shard's engine, all on the same tick interval.
func NewShardSet(g *sim.ShardGroup, interval sim.Time) *ShardSet {
	ss := &ShardSet{
		samplers: make([]*Sampler, g.Shards()),
		kinds:    make(map[string]ColKind),
	}
	for i := range ss.samplers {
		s := NewUnbound(interval)
		s.Bind(g.Shard(i))
		ss.samplers[i] = s
	}
	return ss
}

// Shards returns the number of per-shard samplers.
func (ss *ShardSet) Shards() int {
	if ss == nil {
		return 0
	}
	return len(ss.samplers)
}

// Register adds a cross-shard column: probe(shard) must read only state
// the given shard owns, and the per-shard samples merge per kind.
func (ss *ShardSet) Register(name string, kind ColKind, probe func(shard int) float64) {
	if ss == nil {
		return
	}
	if kind == KindLocal {
		panic(fmt.Sprintf("telemetry: column %q: use RegisterLocal for single-shard columns", name))
	}
	ss.kinds[name] = kind
	for i, s := range ss.samplers {
		i := i
		s.Register(name, func() float64 { return probe(i) })
	}
}

// RegisterLocal adds a column sampled only on its owning shard (per-node
// or per-switch series whose state has a single owner).
func (ss *ShardSet) RegisterLocal(name string, owner int, probe Probe) {
	if ss == nil {
		return
	}
	ss.kinds[name] = KindLocal
	ss.samplers[owner].Register(name, probe)
}

// Start starts every per-shard sampler. Call after all registration, and
// before the group runs.
func (ss *ShardSet) Start() {
	if ss == nil {
		return
	}
	for _, s := range ss.samplers {
		s.Start()
	}
}

// Samples returns the number of stored rows (identical on every shard).
func (ss *ShardSet) Samples() int {
	if ss == nil || len(ss.samplers) == 0 {
		return 0
	}
	return ss.samplers[0].Samples()
}

// Ticks returns the rows ever recorded, including downsampled ones.
func (ss *ShardSet) Ticks() uint64 {
	if ss == nil || len(ss.samplers) == 0 {
		return 0
	}
	return ss.samplers[0].Ticks()
}

// merged folds the per-shard samplers into one synthetic Sampler holding
// the merged columns, so the ordinary writers render it. Every shard must
// have recorded the identical time grid — samplers tick the same interval,
// compress at the same row bound, and daemon semantics are global, so a
// mismatch means a probe perturbed the model and is reported as an error.
func (ss *ShardSet) merged() (*Sampler, error) {
	if ss == nil || len(ss.samplers) == 0 {
		return nil, fmt.Errorf("telemetry: empty shard set")
	}
	base := ss.samplers[0]
	for k, s := range ss.samplers[1:] {
		if len(s.times) != len(base.times) {
			return nil, fmt.Errorf("telemetry: shard %d recorded %d rows, shard 0 %d — tick grids diverged",
				k+1, len(s.times), len(base.times))
		}
		for r := range s.times {
			if s.times[r] != base.times[r] {
				return nil, fmt.Errorf("telemetry: shard %d row %d at %v, shard 0 at %v — tick grids diverged",
					k+1, r, s.times[r], base.times[r])
			}
		}
	}
	m := &Sampler{interval: base.interval, maxSamples: base.maxSamples, ticks: base.ticks}
	m.times = append([]sim.Time(nil), base.times...)
	colIdx := make(map[string]int)
	for _, s := range ss.samplers {
		for i, name := range s.names {
			kind, ok := ss.kinds[name]
			if !ok {
				return nil, fmt.Errorf("telemetry: column %q has no merge kind (registered directly on a shard sampler?)", name)
			}
			j, seen := colIdx[name]
			if !seen {
				colIdx[name] = len(m.names)
				m.names = append(m.names, name)
				m.cols = append(m.cols, append([]float64(nil), s.cols[i]...))
				continue
			}
			if kind == KindLocal {
				return nil, fmt.Errorf("telemetry: local column %q registered on multiple shards", name)
			}
			dst := m.cols[j]
			for r, v := range s.cols[i] {
				switch kind {
				case KindMax:
					if v > dst[r] {
						dst[r] = v
					}
				default: // KindSum, KindSumPS
					dst[r] += v
				}
			}
		}
	}
	for name, j := range colIdx {
		if ss.kinds[name] == KindSumPS {
			col := m.cols[j]
			for r := range col {
				col[r] /= 1000
			}
		}
	}
	return m, nil
}

// WriteCSV emits the merged time-series in the exact format Sampler.WriteCSV
// uses.
func (ss *ShardSet) WriteCSV(w io.Writer) error {
	m, err := ss.merged()
	if err != nil {
		return err
	}
	return m.WriteCSV(w)
}

// WriteHeatmapCSV emits the merged heatmap matrix for columns with the
// given prefix.
func (ss *ShardSet) WriteHeatmapCSV(w io.Writer, prefix string) error {
	m, err := ss.merged()
	if err != nil {
		return err
	}
	return m.WriteHeatmapCSV(w, prefix)
}
