package telemetry

import (
	"strings"
	"testing"

	"rvma/internal/sim"
	"rvma/internal/trace"
)

func recorderFixture(t *testing.T) (*sim.Engine, *trace.Tracer, *FlightRecorder, *strings.Builder) {
	t.Helper()
	eng := sim.NewEngine(1)
	tr := trace.New(eng, 16)
	tr.EnableAll()
	var out strings.Builder
	return eng, tr, NewFlightRecorder(tr, &out), &out
}

func TestFlightRecorderDumpsOnce(t *testing.T) {
	_, tr, rec, out := recorderFixture(t)
	tr.Eventf(trace.CatPacket, "inject #1 0->1 64B")
	tr.Eventf(trace.CatRVMA, "node 1 win 0x10 epoch 1 complete")

	if !rec.Dump("first failure") {
		t.Fatal("first Dump returned false")
	}
	if rec.Dump("second failure") {
		t.Fatal("second Dump fired; recorder must dump at most once")
	}
	dumped, reason := rec.Dumped()
	if !dumped || reason != "first failure" {
		t.Fatalf("Dumped() = %v, %q", dumped, reason)
	}
	s := out.String()
	for _, want := range []string{"flight recorder dump: first failure", "inject #1", "epoch 1 complete", "end flight recorder dump"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump missing %q:\n%s", want, s)
		}
	}
	if strings.Count(s, "flight recorder dump:") != 1 {
		t.Fatalf("more than one dump in output:\n%s", s)
	}
}

// TestFlightRecorderInvariantHook: a failing sim.Assertf must trigger the
// armed recorder before the panic unwinds, with the violation message as
// the dump reason.
func TestFlightRecorderInvariantHook(t *testing.T) {
	_, tr, rec, out := recorderFixture(t)
	tr.Eventf(trace.CatNIC, "nic0 tx msg dst=1 4096B")
	rec.Arm()
	defer rec.Disarm()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Assertf(false) did not panic")
			}
		}()
		sim.Assertf(false, "rvma node %d counter went negative: %d", 3, -1)
	}()

	dumped, reason := rec.Dumped()
	if !dumped {
		t.Fatal("invariant violation did not trigger the recorder")
	}
	if !strings.Contains(reason, "counter went negative: -1") {
		t.Fatalf("dump reason lacks violation context: %q", reason)
	}
	if !strings.Contains(out.String(), "nic0 tx msg") {
		t.Fatalf("dump lacks prior event history:\n%s", out.String())
	}
}

func TestWatchNACKBurst(t *testing.T) {
	eng, _, rec, _ := recorderFixture(t)
	nacks := 0.0
	// Model: quiet for 5 ticks, then a burst of 10 NACKs in one window.
	for i := 1; i <= 8; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Microsecond+sim.Nanosecond, func() {
			if i == 6 {
				nacks += 10
			} else {
				nacks++
			}
		})
	}
	s := New(eng, sim.Microsecond)
	s.Register("noop", func() float64 { return 0 })
	rec.WatchNACKBurst(s, func() float64 { return nacks }, 5)
	s.Start()
	eng.Run()

	dumped, reason := rec.Dumped()
	if !dumped {
		t.Fatal("NACK burst did not trigger the recorder")
	}
	if !strings.Contains(reason, "NACK burst") {
		t.Fatalf("unexpected reason %q", reason)
	}
}

func TestWatchNACKBurstQuietRunNoDump(t *testing.T) {
	eng, _, rec, _ := recorderFixture(t)
	nacks := 0.0
	for i := 1; i <= 8; i++ {
		eng.Schedule(sim.Time(i)*sim.Microsecond+sim.Nanosecond, func() { nacks++ })
	}
	s := New(eng, sim.Microsecond)
	s.Register("noop", func() float64 { return 0 })
	rec.WatchNACKBurst(s, func() float64 { return nacks }, 5)
	s.Start()
	eng.Run()

	if dumped, reason := rec.Dumped(); dumped {
		t.Fatalf("quiet run dumped: %q", reason)
	}
}
