package recovery

import (
	"errors"
	"testing"

	"rvma/internal/sim"
)

// stormConfig is a tight, fully explicit policy so the bound arithmetic
// in the assertions below is exact: gap k = Timeout + jittered
// min(BackoffMax, BackoffBase<<k), jitter ±50%.
func stormConfig() Config {
	return Config{
		Timeout:     10 * sim.Microsecond,
		BackoffBase: 5 * sim.Microsecond,
		BackoffMax:  40 * sim.Microsecond,
		Jitter:      0.5,
		MaxRetries:  4,
	}
}

// stormBackoffBounds returns the [lo, hi] window the gap between attempt
// try and try+1 must land in under cfg: the mandatory timeout plus the
// exponential backoff spread by ±Jitter. slack absorbs ScaleF's sub-ns
// fixed-point rounding.
func stormBackoffBounds(cfg Config, try int) (lo, hi sim.Time) {
	d := cfg.BackoffMax
	if shifted := cfg.BackoffBase << uint(try); shifted < d {
		d = shifted
	}
	const slack = sim.Time(1) // 1 ps of rounding headroom
	lo = cfg.Timeout + sim.ScaleF(d, 1-cfg.Jitter) - slack
	hi = cfg.Timeout + sim.ScaleF(d, 1+cfg.Jitter) + slack
	return lo, hi
}

// TestRetryStormBackoffBoundsBurstRate drives a storm of concurrent ops
// into a black hole (nothing is ever acked) and checks the property the
// recovery layer exists to provide: retransmissions are rate-limited by
// jittered exponential backoff, per op and in aggregate, so a loss storm
// cannot snowball into a retransmit storm.
func TestRetryStormBackoffBoundsBurstRate(t *testing.T) {
	const ops = 32
	cfg := stormConfig()
	eng := sim.NewEngine(11)
	m := NewManager(eng, cfg)
	m.SeedBackoff(sim.NewRNG(sim.SeedFor(11, "storm-backoff")))

	sends := make([][]sim.Time, ops)
	fails := make([]int, ops)
	opDone := make([]*Op, ops)
	eng.Schedule(0, func() {
		for i := 0; i < ops; i++ {
			i := i
			opDone[i] = m.Run(lossySender(eng, 99, 0, &sends[i]), func() { fails[i]++ })
		}
	})
	eng.Run()

	// Every op spent its full budget: 1 initial + MaxRetries attempts.
	for i := 0; i < ops; i++ {
		if len(sends[i]) != cfg.MaxRetries+1 {
			t.Fatalf("op %d made %d attempts, want %d", i, len(sends[i]), cfg.MaxRetries+1)
		}
		// Each consecutive gap sits inside the jittered backoff window for
		// its retry number — never faster (burst bound) and never slower
		// (liveness bound).
		for k := 0; k+1 < len(sends[i]); k++ {
			lo, hi := stormBackoffBounds(cfg, k)
			gap := sends[i][k+1] - sends[i][k]
			if gap < lo || gap > hi {
				t.Errorf("op %d retry %d gap %v outside jittered window [%v, %v]", i, k, gap, lo, hi)
			}
		}
	}

	// Jitter must actually spread the storm: with a ±50% window and 32 ops
	// retrying in lockstep otherwise, at least two first-retry gaps differ.
	first := map[sim.Time]bool{}
	for i := 0; i < ops; i++ {
		first[sends[i][1]-sends[i][0]] = true
	}
	if len(first) < 2 {
		t.Errorf("all %d ops drew the identical first backoff %v; jitter not applied", ops, sends[0][1]-sends[0][0])
	}

	// Aggregate burst-rate bound: the whole storm never exceeds the
	// per-op budget, and no attempt lands past the advertised horizon.
	s := m.Stats
	if s.Retransmits != uint64(ops*cfg.MaxRetries) {
		t.Errorf("retransmits = %d, want exactly ops*budget = %d", s.Retransmits, ops*cfg.MaxRetries)
	}
	if s.Retransmits > uint64(cfg.MaxRetries)*s.OpsStarted {
		t.Errorf("budget invariant violated: %+v", s)
	}
	horizon := m.RetryHorizon()
	for i := 0; i < ops; i++ {
		for k, at := range sends[i] {
			if at > horizon {
				t.Fatalf("op %d attempt %d at %v, past retry horizon %v", i, k, at, horizon)
			}
		}
	}

	// Exhaustion accounting: every op failed exactly once, exactly one
	// onFail call each, and Done resolved to ErrExhausted.
	if s.Exhausted != ops || s.OpsCompleted != 0 || s.Recovered != 0 {
		t.Errorf("stats = %+v, want %d exhausted and nothing completed", s, ops)
	}
	for i := 0; i < ops; i++ {
		if fails[i] != 1 {
			t.Errorf("op %d: onFail called %d times, want exactly 1", i, fails[i])
		}
		err, _ := opDone[i].Done.Value().(error)
		if !opDone[i].Done.Done() || !errors.Is(err, ErrExhausted) {
			t.Errorf("op %d: done=%v value=%v, want ErrExhausted",
				i, opDone[i].Done.Done(), opDone[i].Done.Value())
		}
	}
}

// TestRetryStormDeterministic pins that the storm above — including every
// jitter draw — replays byte-identically from the same seeds, so the
// backoff-bound assertions are stable, not flaky-by-construction.
func TestRetryStormDeterministic(t *testing.T) {
	run := func() ([]sim.Time, Stats) {
		const ops = 16
		eng := sim.NewEngine(23)
		m := NewManager(eng, stormConfig())
		m.SeedBackoff(sim.NewRNG(sim.SeedFor(23, "storm-backoff")))
		sends := make([][]sim.Time, ops)
		eng.Schedule(0, func() {
			for i := 0; i < ops; i++ {
				i := i
				m.Run(lossySender(eng, 99, 0, &sends[i]), nil)
			}
		})
		eng.Run()
		var flat []sim.Time
		for _, s := range sends {
			flat = append(flat, s...)
		}
		return flat, m.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if len(t1) != len(t2) {
		t.Fatalf("attempt counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("attempt %d at %v vs %v across identical runs", i, t1[i], t2[i])
		}
	}
}

// TestRetryStormPartialRecovery mixes survivors into the storm: ops whose
// losses stop before the budget runs out must recover (with their early
// gaps still bounded), while the black-holed ops exhaust — and the two
// populations' accounting must not bleed into each other.
func TestRetryStormPartialRecovery(t *testing.T) {
	const ops = 24
	cfg := stormConfig()
	eng := sim.NewEngine(31)
	m := NewManager(eng, cfg)
	m.SeedBackoff(sim.NewRNG(sim.SeedFor(31, "storm-backoff")))

	sends := make([][]sim.Time, ops)
	fails := make([]int, ops)
	opDone := make([]*Op, ops)
	drops := func(i int) int {
		if i%3 == 0 {
			return 99 // black hole: must exhaust
		}
		return i % 3 // 1 or 2 losses: recovers inside the budget
	}
	eng.Schedule(0, func() {
		for i := 0; i < ops; i++ {
			i := i
			opDone[i] = m.Run(lossySender(eng, drops(i), 2*sim.Microsecond, &sends[i]), func() { fails[i]++ })
		}
	})
	eng.Run()

	var wantExhausted, wantRecovered uint64
	for i := 0; i < ops; i++ {
		if drops(i) > cfg.MaxRetries {
			wantExhausted++
			if fails[i] != 1 {
				t.Errorf("black-holed op %d: onFail called %d times, want 1", i, fails[i])
			}
			err, _ := opDone[i].Done.Value().(error)
			if !errors.Is(err, ErrExhausted) {
				t.Errorf("black-holed op %d: value %v, want ErrExhausted", i, opDone[i].Done.Value())
			}
			continue
		}
		wantRecovered++
		if fails[i] != 0 {
			t.Errorf("surviving op %d: onFail called %d times, want 0", i, fails[i])
		}
		if opDone[i].Done.Value() != nil {
			t.Errorf("surviving op %d failed: %v", i, opDone[i].Done.Value())
		}
		if len(sends[i]) != drops(i)+1 {
			t.Errorf("surviving op %d made %d attempts, want %d", i, len(sends[i]), drops(i)+1)
		}
		// A survivor's retransmit gaps obey the same backoff windows as the
		// doomed ops — recovery never fast-paths the timeout.
		for k := 0; k+1 < len(sends[i]); k++ {
			lo, hi := stormBackoffBounds(cfg, k)
			gap := sends[i][k+1] - sends[i][k]
			if gap < lo || gap > hi {
				t.Errorf("op %d retry %d gap %v outside [%v, %v]", i, k, gap, lo, hi)
			}
		}
	}
	s := m.Stats
	if s.Exhausted != wantExhausted || s.Recovered != wantRecovered {
		t.Errorf("stats = %+v, want %d exhausted / %d recovered", s, wantExhausted, wantRecovered)
	}
	if s.OpsCompleted != wantRecovered || s.OpsStarted != ops {
		t.Errorf("stats = %+v, want %d completed of %d started", s, wantRecovered, ops)
	}
}
