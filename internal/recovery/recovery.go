// Package recovery is the deterministic sender-side reliability layer:
// per-operation timeouts on simulated time, retransmission with
// exponential backoff and engine-RNG jitter, and a bounded retry budget.
// It is deliberately protocol-agnostic — an operation is anything that
// exposes "acked" and (optionally) "nacked" futures — so the RVMA
// transport (driven by PutOp.Nack and the reliable put's placement ack)
// and the RDMA transport (driven by its transport-ACK path) share one
// retry policy and the paper's comparison stays fair.
//
// Determinism rules (DESIGN.md §8): every timer is an engine event, every
// jitter draw comes from the engine RNG in event order, and timeout events
// that lose the race against an ack fire as no-ops rather than being
// canceled — pooled event handles must not be canceled after they may
// have fired (the engine recycles them), so the no-op-on-stale-state
// pattern is the only safe one. Stray no-op timeouts can extend an
// engine run past the last useful event by at most one timeout; they
// never change any result bytes.
package recovery

import (
	"errors"
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// ErrExhausted is the failure an operation's Done future resolves with
// when the retry budget runs out.
var ErrExhausted = errors.New("recovery: retry budget exhausted")

// Config parameterizes the retry policy.
type Config struct {
	// Timeout is the per-attempt ack deadline. It should exceed the
	// worst-case round trip under congestion, or healthy operations pay
	// spurious (harmless but wasteful) retransmits.
	Timeout sim.Time
	// BackoffBase is the delay before the first retransmit; attempt k
	// waits min(BackoffMax, BackoffBase << k). Zero defaults to
	// Timeout / 4.
	BackoffBase sim.Time
	// BackoffMax caps the exponential backoff. Zero defaults to
	// 16 * BackoffBase.
	BackoffMax sim.Time
	// Jitter spreads each backoff by ±Jitter fraction via the engine RNG,
	// decorrelating retry storms from senders that lost packets of the
	// same burst.
	Jitter float64
	// MaxRetries is the retransmit budget per operation (attempts are
	// 1 + MaxRetries). Zero means fail on the first loss.
	MaxRetries int
}

// DefaultConfig returns the policy used by the harness fault sweeps:
// generous timeout (well past an incast-congested round trip), base
// backoff a quarter of it, half-range jitter, and a budget of 8.
func DefaultConfig() Config {
	return Config{
		Timeout:     100 * sim.Microsecond,
		BackoffBase: 25 * sim.Microsecond,
		BackoffMax:  400 * sim.Microsecond,
		Jitter:      0.5,
		MaxRetries:  8,
	}
}

// Stats aggregates recovery-layer counters.
type Stats struct {
	OpsStarted   uint64
	OpsCompleted uint64 // acked (with or without retransmits)
	Retransmits  uint64 // re-sends issued (excludes first attempts)
	Timeouts     uint64 // attempts that hit the ack deadline
	NackRetries  uint64 // attempts cut short by an explicit NACK
	Exhausted    uint64 // operations that ran out of budget
	Recovered    uint64 // operations acked only after >= 1 retransmit
	Reclaims     uint64 // receiver-side buffer reclaims (IncEpoch + Rewind)
}

// Attempt is one wire attempt of a guarded operation: the futures the
// protocol layer hands back for it. Nack may be nil for protocols without
// explicit negative acknowledgment (RDMA).
type Attempt struct {
	Acked *sim.Future
	Nack  *sim.Future
}

// Op tracks one operation under recovery.
type Op struct {
	// Done resolves with nil once the operation is acked, or with
	// ErrExhausted when the budget runs out.
	Done *sim.Future

	tries int
}

// Manager drives the retry policy for one endpoint's operations. It is
// engine-local (one per cluster node set, like everything else in a cell)
// and keeps its own Stats.
type Manager struct {
	eng sim.Tagged
	cfg Config

	Stats Stats

	// rng, when non-nil, supplies backoff jitter from a manager-private
	// stream instead of the engine's shared stream. Sharded runs need this:
	// the draw sequence must depend only on this manager's own retries, not
	// on which other components happen to share its engine.
	rng *sim.RNG

	// tl/node feed the recovery counter tracks (retransmits, timeouts,
	// reclaims) into the Perfetto timeline; nil when metrics are detached.
	tl   *metrics.Timeline
	node int
}

// NewManager builds a manager, filling Config defaults for zero fields.
func NewManager(eng *sim.Engine, cfg Config) *Manager {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultConfig().Timeout
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = cfg.Timeout / 4
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 16 * cfg.BackoffBase
	}
	if cfg.Jitter < 0 || cfg.Jitter > 1 {
		panic(fmt.Sprintf("recovery: jitter %v outside [0, 1]", cfg.Jitter))
	}
	if cfg.MaxRetries < 0 {
		panic(fmt.Sprintf("recovery: negative retry budget %d", cfg.MaxRetries))
	}
	return &Manager{eng: eng.Tag("recovery"), cfg: cfg}
}

// Config returns the effective (default-filled) policy.
func (m *Manager) Config() Config { return m.cfg }

// SeedBackoff gives the manager a private jitter stream. Call before any
// operation runs; a nil rng restores the engine's shared stream.
func (m *Manager) SeedBackoff(rng *sim.RNG) { m.rng = rng }

// SetMetrics attaches the registry's timeline so recovery decisions render
// as counter tracks on the given node's Perfetto process. A nil registry
// (or one without a timeline) detaches.
func (m *Manager) SetMetrics(reg *metrics.Registry, node int) {
	m.tl = reg.Timeline()
	m.node = node
}

// Run drives one operation: send(try) issues attempt number try (0 is the
// initial transmission) and returns its futures. Attempts that neither
// ack nor NACK within Timeout are retransmitted after a jittered backoff,
// up to MaxRetries; exhaustion calls onFail (if non-nil) and fails Done
// with ErrExhausted.
func (m *Manager) Run(send func(try int) Attempt, onFail func()) *Op {
	m.Stats.OpsStarted++
	op := &Op{Done: sim.NewFuture()}
	var attempt func(try int)
	attempt = func(try int) {
		if op.Done.Done() {
			return // acked while this retransmit was waiting out its backoff
		}
		op.tries = try
		at := send(try)
		acted := false // this attempt already decided to retry or give up
		at.Acked.OnComplete(func() {
			if op.Done.Done() {
				return
			}
			m.Stats.OpsCompleted++
			if op.tries > 0 {
				m.Stats.Recovered++
			}
			op.Done.Complete(m.eng.Engine, nil)
		})
		decide := func(timedOut bool) {
			if acted || op.Done.Done() || at.Acked.Done() {
				return
			}
			acted = true
			if timedOut {
				m.Stats.Timeouts++
				m.tl.Counter(m.node, "recovery.timeouts", m.eng.Now(), float64(m.Stats.Timeouts))
			} else {
				m.Stats.NackRetries++
			}
			if try >= m.cfg.MaxRetries {
				m.Stats.Exhausted++
				if onFail != nil {
					onFail()
				}
				op.Done.Complete(m.eng.Engine, ErrExhausted)
				return
			}
			m.Stats.Retransmits++
			m.tl.Counter(m.node, "recovery.retransmits", m.eng.Now(), float64(m.Stats.Retransmits))
			if sim.DebugEnabled {
				m.debugCheckBudget()
			}
			m.eng.Schedule(m.backoff(try), func() { attempt(try + 1) })
		}
		if at.Nack != nil {
			at.Nack.OnComplete(func() { decide(false) })
		}
		// The timeout fires unconditionally and no-ops when stale (see the
		// package comment for why it is never canceled).
		m.eng.Schedule(m.cfg.Timeout, func() { decide(true) })
	}
	attempt(0)
	return op
}

// backoff returns the jittered delay before retransmit number try+1.
func (m *Manager) backoff(try int) sim.Time {
	d := m.cfg.BackoffMax
	if try < 30 { // beyond 2^30 the shift alone exceeds any sane cap
		if shifted := m.cfg.BackoffBase << uint(try); shifted < d {
			d = shifted
		}
	}
	if m.cfg.Jitter > 0 {
		rng := m.rng
		if rng == nil {
			rng = m.eng.RNG()
		}
		d = rng.Jitter(d, m.cfg.Jitter)
	}
	return d
}

// RetryHorizon bounds how long a sender can keep retrying one operation:
// every attempt's timeout plus every maximal backoff (jitter can stretch
// each backoff by at most the jitter fraction). Receiver-side reclaim
// waits past this horizon so it never races a retransmit that could still
// legitimately complete the current buffer.
func (m *Manager) RetryHorizon() sim.Time {
	h := sim.Scale(m.cfg.MaxRetries+1, m.cfg.Timeout)
	for try := 0; try < m.cfg.MaxRetries; try++ {
		d := m.cfg.BackoffMax
		if try < 30 {
			if shifted := m.cfg.BackoffBase << uint(try); shifted < d {
				d = shifted
			}
		}
		h += d + sim.ScaleF(d, m.cfg.Jitter)
	}
	return h
}

// WindowGuard ties receiver-side timeouts to an RVMA window: when an
// expected message has not completed the window's epoch by the reclaim
// deadline, the guard hands the holed buffer to software with IncEpoch
// and records it via Rewind — reclaimed and reposted instead of leaked,
// the §IV-F recovery path.
type WindowGuard struct {
	m   *Manager
	win *rvma.Window
	// after is the reclaim deadline per Expect: past the sender's retry
	// horizon (plus slack), so a buffer is only reclaimed once no
	// retransmit can still be in flight for its epoch.
	after sim.Time
}

// GuardWindow builds a guard for win with the reclaim deadline derived
// from the manager's retry policy.
func (m *Manager) GuardWindow(win *rvma.Window) *WindowGuard {
	return &WindowGuard{m: m, win: win, after: m.RetryHorizon() + 2*m.cfg.Timeout}
}

// Expect arms a one-shot deadline for the window's current epoch: if that
// epoch is still open at the deadline and its buffer holds partial data,
// the buffer is reclaimed. One Expect per expected completion; the check
// is a single scheduled event, never a self-rescheduling ticker (a ticker
// would keep the engine run alive forever).
func (g *WindowGuard) Expect() {
	epoch := g.win.Epoch()
	g.m.eng.Schedule(g.after, func() { g.check(epoch) })
}

func (g *WindowGuard) check(epoch int64) {
	w := g.win
	if w.Closed() || w.Epoch() != epoch {
		return // the epoch completed (or the run is over); nothing leaked
	}
	head := w.Head()
	if head == nil || (head.HighWater == 0 && head.Fill == 0) {
		// Nothing partial to salvage: either no buffer or an untouched one
		// (the message may be wholly lost — that is the sender's failure
		// to report, not a receiver leak).
		return
	}
	f, err := w.IncEpoch()
	if err != nil {
		return
	}
	g.m.Stats.Reclaims++
	g.m.tl.Counter(g.m.node, "recovery.reclaims", g.m.eng.Now(), float64(g.m.Stats.Reclaims))
	f.OnComplete(func() {
		// Retrieve the salvaged buffer through the paper's rewind handle;
		// the completion handler installed by the transport reposts in
		// its place.
		w.Rewind(1)
	})
}

// debugCheckBudget asserts the tentpole's simdebug invariant: the layer
// never issues more retransmits than the budget allows across all started
// operations.
func (m *Manager) debugCheckBudget() {
	sim.Assertf(m.Stats.Retransmits <= uint64(m.cfg.MaxRetries)*m.Stats.OpsStarted,
		"recovery: %d retransmits exceed budget %d x %d ops",
		m.Stats.Retransmits, m.cfg.MaxRetries, m.Stats.OpsStarted)
}
