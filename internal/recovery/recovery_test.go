package recovery

import (
	"errors"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// lossySender returns a send function whose first `drops` attempts are
// never acknowledged (simulated loss) and whose later attempts ack after
// rtt. sends records the issue time of every attempt.
func lossySender(eng *sim.Engine, drops int, rtt sim.Time, sends *[]sim.Time) func(int) Attempt {
	return func(try int) Attempt {
		*sends = append(*sends, eng.Now())
		at := Attempt{Acked: sim.NewFuture()}
		if try >= drops {
			eng.Schedule(rtt, func() {
				if !at.Acked.Done() {
					at.Acked.Complete(eng, nil)
				}
			})
		}
		return at
	}
}

func TestAckOnFirstAttempt(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, DefaultConfig())
	var sends []sim.Time
	var op *Op
	eng.Schedule(0, func() {
		op = m.Run(lossySender(eng, 0, 5*sim.Microsecond, &sends), nil)
	})
	eng.Run()
	if !op.Done.Done() || op.Done.Value() != nil {
		t.Fatalf("op not cleanly done: done=%v value=%v", op.Done.Done(), op.Done.Value())
	}
	if len(sends) != 1 {
		t.Fatalf("attempts = %d, want 1", len(sends))
	}
	s := m.Stats
	if s.OpsStarted != 1 || s.OpsCompleted != 1 || s.Retransmits != 0 || s.Recovered != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTimeoutRetransmitRecovers(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewManager(eng, DefaultConfig())
	var sends []sim.Time
	var op *Op
	eng.Schedule(0, func() {
		op = m.Run(lossySender(eng, 2, 5*sim.Microsecond, &sends), nil)
	})
	eng.Run()
	if !op.Done.Done() || op.Done.Value() != nil {
		t.Fatalf("op not cleanly done: done=%v value=%v", op.Done.Done(), op.Done.Value())
	}
	if len(sends) != 3 {
		t.Fatalf("attempts = %d, want 3 (two losses + success)", len(sends))
	}
	s := m.Stats
	if s.OpsCompleted != 1 || s.Retransmits != 2 || s.Timeouts != 2 || s.Recovered != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Each retransmit waits at least the full timeout after its attempt.
	for i := 1; i < len(sends); i++ {
		if gap := sends[i] - sends[i-1]; gap < m.Config().Timeout {
			t.Fatalf("attempt %d only %v after previous, want >= timeout %v", i, gap, m.Config().Timeout)
		}
	}
}

func TestNackTriggersFastRetry(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	m := NewManager(eng, cfg)
	var sends []sim.Time
	rtt := 5 * sim.Microsecond
	send := func(try int) Attempt {
		sends = append(sends, eng.Now())
		at := Attempt{Acked: sim.NewFuture(), Nack: sim.NewFuture()}
		if try == 0 {
			eng.Schedule(rtt, func() { at.Nack.Complete(eng, rvma.ErrNoBuffer) })
		} else {
			eng.Schedule(rtt, func() { at.Acked.Complete(eng, nil) })
		}
		return at
	}
	var op *Op
	eng.Schedule(0, func() { op = m.Run(send, nil) })
	eng.Run()
	if op.Done.Value() != nil {
		t.Fatalf("op failed: %v", op.Done.Value())
	}
	s := m.Stats
	if s.NackRetries != 1 || s.Timeouts != 0 || s.Retransmits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The NACK retry must not wait for the ack timeout: it fires at the
	// NACK plus one backoff, well inside the timeout with this policy.
	if gap := sends[1] - sends[0]; gap >= cfg.Timeout {
		t.Fatalf("nack retry waited %v, want < timeout %v", gap, cfg.Timeout)
	}
}

func TestExhaustionFailsOp(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.MaxRetries = 3
	m := NewManager(eng, cfg)
	var sends []sim.Time
	failed := false
	var op *Op
	eng.Schedule(0, func() {
		op = m.Run(lossySender(eng, 99, 0, &sends), func() { failed = true })
	})
	eng.Run()
	err, _ := op.Done.Value().(error)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("op value = %v, want ErrExhausted", op.Done.Value())
	}
	if !failed {
		t.Fatal("onFail not called")
	}
	if len(sends) != cfg.MaxRetries+1 {
		t.Fatalf("attempts = %d, want %d", len(sends), cfg.MaxRetries+1)
	}
	s := m.Stats
	if s.Exhausted != 1 || s.OpsCompleted != 0 || s.Retransmits != uint64(cfg.MaxRetries) {
		t.Fatalf("stats = %+v", s)
	}
	if s.Retransmits > uint64(cfg.MaxRetries)*s.OpsStarted {
		t.Fatalf("budget invariant violated: %+v", s)
	}
	// The whole retry schedule fits inside the advertised horizon.
	if end := op.Done.CompletedAt(); end > m.RetryHorizon() {
		t.Fatalf("exhausted at %v, past retry horizon %v", end, m.RetryHorizon())
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{
		Timeout:     10 * sim.Microsecond,
		BackoffBase: 10 * sim.Microsecond,
		BackoffMax:  40 * sim.Microsecond,
		Jitter:      0, // deterministic gaps
		MaxRetries:  4,
	}
	m := NewManager(eng, cfg)
	var sends []sim.Time
	eng.Schedule(0, func() { m.Run(lossySender(eng, 99, 0, &sends), nil) })
	eng.Run()
	// Gap k = timeout + min(max, base<<k): 20, 30, 50, 50 us.
	want := []sim.Time{20, 30, 50, 50}
	for i := range want {
		want[i] *= sim.Microsecond
	}
	if len(sends) != 5 {
		t.Fatalf("attempts = %d, want 5", len(sends))
	}
	for i, w := range want {
		if gap := sends[i+1] - sends[i]; gap != w {
			t.Fatalf("gap %d = %v, want %v", i, gap, w)
		}
	}
}

func TestManagerDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats) {
		eng := sim.NewEngine(7)
		m := NewManager(eng, DefaultConfig())
		var last sim.Time
		eng.Schedule(0, func() {
			for i := 0; i < 8; i++ {
				var sends []sim.Time
				op := m.Run(lossySender(eng, i%4, 3*sim.Microsecond, &sends), nil)
				op.Done.OnComplete(func() { last = eng.Now() })
			}
		})
		eng.Run()
		return last, m.Stats
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v, %+v) vs (%v, %+v)", t1, s1, t2, s2)
	}
}

// TestWindowGuardReclaimsHoledBuffer drives the receiver-side recovery
// path end to end on real endpoints: a put smaller than the window
// threshold leaves the head buffer permanently partial (the rest of the
// epoch was "lost"); the guard's deadline hands it to software via
// IncEpoch and retrieves it with Rewind.
func TestWindowGuardReclaimsHoledBuffer(t *testing.T) {
	eng := sim.NewEngine(1)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	rcfg := rvma.DefaultConfig()
	rcfg.HistoryDepth = 2
	src := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rcfg)
	dst := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rcfg)

	m := NewManager(eng, DefaultConfig())
	win, err := dst.InitWindow(0x6E55, 4096, rvma.EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.PostBuffer(4096); err != nil {
		t.Fatal(err)
	}
	guard := m.GuardWindow(win)
	var salvaged *rvma.Buffer
	win.SetCompletionHandler(func(b *rvma.Buffer) { salvaged = b })
	eng.Schedule(0, func() {
		guard.Expect()
		src.PutN(1, 0x6E55, 0, 2048) // half the epoch; the rest never comes
	})
	eng.Run()

	if m.Stats.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", m.Stats.Reclaims)
	}
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 after reclaim", win.Epoch())
	}
	if salvaged == nil || salvaged.HighWater != 2048 {
		t.Fatalf("salvaged buffer = %+v, want high water 2048", salvaged)
	}
	if dst.Stats.Rewinds != 1 || dst.Stats.EarlyCompletions != 1 {
		t.Fatalf("endpoint stats: rewinds=%d early=%d", dst.Stats.Rewinds, dst.Stats.EarlyCompletions)
	}
}

// TestWindowGuardLeavesHealthyWindowAlone arms a guard on a window whose
// epoch completes normally: the deadline must fire as a no-op.
func TestWindowGuardLeavesHealthyWindowAlone(t *testing.T) {
	eng := sim.NewEngine(1)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	src := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	dst := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())

	m := NewManager(eng, DefaultConfig())
	win, err := dst.InitWindow(0x6E55, 4096, rvma.EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.PostBuffer(4096); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() {
		m.GuardWindow(win).Expect()
		src.PutN(1, 0x6E55, 0, 4096)
	})
	eng.Run()
	if m.Stats.Reclaims != 0 {
		t.Fatalf("reclaims = %d, want 0", m.Stats.Reclaims)
	}
	if win.Epoch() != 1 || dst.Stats.EarlyCompletions != 0 {
		t.Fatalf("epoch=%d early=%d, want clean hardware completion", win.Epoch(), dst.Stats.EarlyCompletions)
	}
}
