//go:build simdebug

package rvma

import (
	"strings"
	"testing"

	"rvma/internal/telemetry"
	"rvma/internal/trace"
)

// TestFlightRecorderDumpsOnSeededInvariant: corrupting model state so a
// real simdebug invariant trips must produce a flight-recorder dump whose
// reason carries the violation and whose body carries the run's recent
// event history — the "failures come with their last-N-events" contract.
func TestFlightRecorderDumpsOnSeededInvariant(t *testing.T) {
	ep := debugEndpoint(t)
	tr := trace.New(ep.Engine(), 32)
	tr.EnableAll()
	ep.SetTracer(tr)

	var out strings.Builder
	rec := telemetry.NewFlightRecorder(tr, &out)
	rec.Arm()
	defer rec.Disarm()

	w, err := ep.InitWindow(0x2000, 64, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.PostBuffer(64); err != nil {
		t.Fatal(err)
	}

	// Seed the corruption: a negative completion counter violates the
	// per-window invariant debugCheckEndpoint asserts.
	w.counter = -7
	expectInvariantPanic(t, "counter went negative", func() { ep.debugCheckEndpoint() })

	dumped, reason := rec.Dumped()
	if !dumped {
		t.Fatal("invariant violation did not dump the flight recorder")
	}
	if !strings.Contains(reason, "counter went negative: -7") {
		t.Fatalf("dump reason lacks the violation: %q", reason)
	}
	s := out.String()
	if !strings.Contains(s, "flight recorder dump") || !strings.Contains(s, "win 0x2000") {
		t.Fatalf("dump lacks window lifecycle history:\n%s", s)
	}
}
