package rvma

import (
	"bytes"
	"testing"
	"testing/quick"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// oracleWrite is the reference semantics of steered placement: last write
// to an offset wins, in initiation order (single-source traffic on any
// network is placed by offset, so initiation order is irrelevant for
// non-overlapping writes and deterministic for overlapping ones only
// under static routing, which these properties use).
func oracleWrite(buf []byte, off int, data []byte) {
	copy(buf[off:], data)
}

// TestSteeredPlacementMatchesOracle: any sequence of in-bounds puts to one
// mailbox produces exactly the oracle's buffer contents under static
// routing.
func TestSteeredPlacementMatchesOracle(t *testing.T) {
	type putSpec struct {
		Off  uint16
		Len  uint8
		Seed uint8
	}
	f := func(specs []putSpec) bool {
		const bufSize = 8192
		eng := sim.NewEngine(99)
		fcfg := fabric.DefaultConfig()
		net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
		if err != nil {
			return false
		}
		prof := nic.DefaultProfile()
		src := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), DefaultConfig())
		dst := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())
		win, err := dst.InitWindow(1, 1<<40, EpochBytes) // never auto-completes
		if err != nil {
			return false
		}
		buf, err := win.PostBuffer(bufSize)
		if err != nil {
			return false
		}
		oracle := make([]byte, bufSize)
		eng.Schedule(0, func() {
			for _, s := range specs {
				off := int(s.Off) % (bufSize - 256)
				n := int(s.Len) + 1
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(int(s.Seed) + i)
				}
				oracleWrite(oracle, off, data)
				src.Put(1, 1, off, data)
			}
		})
		eng.Run()
		return bytes.Equal(dst.Memory().Read(buf.Region.Base, bufSize), oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochCountMatchesMessageCount: with EPOCH_OPS threshold 1 and k
// posted buffers, sending k messages (any sizes) completes exactly k
// epochs, and each completion reports a plausible length.
func TestEpochCountMatchesMessageCount(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 24 {
			return true
		}
		eng := sim.NewEngine(7)
		net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
		if err != nil {
			return false
		}
		prof := nic.DefaultProfile()
		src := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), DefaultConfig())
		dst := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())
		win, err := dst.InitWindow(1, 1, EpochOps)
		if err != nil {
			return false
		}
		const bufSize = 1 << 17
		for range sizesRaw {
			if _, err := win.PostBuffer(bufSize); err != nil {
				return false
			}
		}
		completions := 0
		win.SetCompletionHandler(func(b *Buffer) { completions++ })
		eng.Schedule(0, func() {
			for _, sz := range sizesRaw {
				n := int(sz)%bufSize + 1
				src.PutN(1, 1, 0, n)
			}
		})
		eng.Run()
		return completions == len(sizesRaw) && win.Epoch() == int64(len(sizesRaw)) &&
			dst.Stats.Drops == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestByteCounterConservation: the per-address byte counter consumes
// exactly threshold per completed epoch — total bytes sent equals
// completed-epochs*threshold plus the residual counter.
func TestByteCounterConservation(t *testing.T) {
	f := func(nMsgsRaw, msgRaw uint8) bool {
		nMsgs := int(nMsgsRaw)%12 + 1
		msgSize := (int(msgRaw)%64 + 1) * 16
		const threshold = 1024
		eng := sim.NewEngine(13)
		net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
		if err != nil {
			return false
		}
		prof := nic.DefaultProfile()
		src := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), DefaultConfig())
		dst := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())
		win, err := dst.InitWindow(1, threshold, EpochBytes)
		if err != nil {
			return false
		}
		// Post generously so no message is ever dropped.
		for i := 0; i < nMsgs+2; i++ {
			win.PostBuffer(threshold)
		}
		eng.Schedule(0, func() {
			for i := 0; i < nMsgs; i++ {
				src.PutN(1, 1, 0, msgSize)
			}
		})
		eng.Run()
		totalBytes := int64(nMsgs * msgSize)
		accounted := win.Epoch()*threshold + win.counter
		return accounted == totalBytes && dst.Stats.Drops == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLUTScalesSparse: the paper argues the 64-bit mailbox space is huge
// but sparse; installing many windows must keep lookups exact (and the
// footprint accounting linear).
func TestLUTScalesSparse(t *testing.T) {
	eng := sim.NewEngine(1)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	dst := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())
	const n = 50_000
	for i := 0; i < n; i++ {
		// Sparse 64-bit addresses: IP/port-style split (§IV-A).
		vaddr := VAddr(uint64(i%251)<<32 | uint64(i)*2654435761)
		if _, err := dst.InitWindow(vaddr, 64, EpochBytes); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	if dst.LUTSize() != n {
		t.Fatalf("LUT size = %d, want %d", dst.LUTSize(), n)
	}
}
