package rvma

import (
	"rvma/internal/memory"
	"rvma/internal/sim"
)

// Notification is an armed observer of one buffer's completion pointer.
// It models the two host-side mechanisms the paper contrasts (§IV-C):
// Monitor/MWait (wake-on-write, ~one cycle) and memory polling (similar
// latency, more energy — here, discretized to the poll interval).
type Notification struct {
	// Done completes when the host observes the completion-pointer write.
	// Its value is the observed [2]uint64{head, length}.
	Done *sim.Future

	watcher *memory.Watcher
	poller  *memory.Poller
}

// Cancel disarms the notification (e.g. the window was closed first).
func (n *Notification) Cancel() {
	if n.watcher != nil {
		n.watcher.Cancel()
		n.watcher = nil
	}
	if n.poller != nil {
		n.poller.Stop()
		n.poller = nil
	}
}

// WatchBuffer arms host-side observation of buf's completion cell using
// the endpoint's configured NotifyMode. The future resolves after the
// NIC's completion write plus the mechanism's observation latency (MWait
// wake or next poll tick) plus the host completion-processing overhead.
//
// Observing an already-completed buffer resolves after just the host
// processing overhead, matching software that checks before arming.
func (ep *Endpoint) WatchBuffer(buf *Buffer) *Notification {
	n := &Notification{Done: sim.NewFuture()}
	eng := ep.eng
	prof := ep.nic.Profile()

	resolve := func() {
		head, length := buf.Cell.Get()
		n.Done.Complete(eng.Engine, [2]uint64{uint64(head), uint64(length)})
	}

	if head, _ := buf.Cell.Get(); head != 0 {
		eng.Schedule(prof.HostCompletionOverhead, resolve)
		return n
	}

	switch ep.cfg.Notification {
	case NotifyMWait:
		n.watcher = ep.Memory().Watch(buf.Cell.Addr(), func(memory.Addr, int) {
			n.watcher.Cancel()
			n.watcher = nil
			eng.Schedule(prof.MWaitWake+prof.HostCompletionOverhead, resolve)
		})
	case NotifyPoll:
		n.poller = memory.StartPoller(eng, prof.PollInterval,
			func() bool {
				head, _ := buf.Cell.Get()
				return head != 0
			},
			func() {
				n.poller = nil
				eng.Schedule(prof.HostCompletionOverhead, resolve)
			})
	}
	return n
}
