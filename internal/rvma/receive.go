package rvma

import (
	"rvma/internal/fabric"
	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/nic"
	"rvma/internal/sim"
	"rvma/internal/trace"
)

// handlePacket is the NIC-side receive path (Figure 3 of the paper): the
// nic layer has already charged per-packet receive processing and the
// single LUT lookup; this function performs translation, DMA placement,
// counter update and the completion check.
func (ep *Endpoint) handlePacket(pkt *fabric.Packet) {
	cmd, ok := pkt.Payload.(*command)
	if !ok {
		panic("rvma: foreign payload on RVMA endpoint")
	}
	switch cmd.op {
	case opPut:
		ep.handlePut(pkt, cmd)
	case opNack:
		ep.handleNack(cmd)
	case opGetReq:
		ep.handleGetReq(pkt, cmd)
	case opGetReply:
		ep.handleGetReply(pkt, cmd)
	case opAck:
		ep.handleAck(cmd)
	default:
		panic("rvma: unknown opcode")
	}
	if sim.DebugEnabled {
		ep.debugCheckEndpoint()
	}
}

// handlePut places one put packet. Steps follow Figure 3: (2) address
// translation via the LUT, (3-4) DMA of the payload into the active
// buffer at head+offset, then the completion check: bump the counter and,
// at threshold, (5) write the completion pointer and rotate the buffer.
func (ep *Endpoint) handlePut(pkt *fabric.Packet, cmd *command) {
	if sim.DebugEnabled {
		ep.dbg.putBytesArrived += uint64(pkt.Size)
	}
	w := ep.lut[cmd.vaddr]
	if w == nil || w.closed {
		if ep.catchAll != nil && !ep.catchAll.closed {
			ep.Stats.CatchAllHits++
			w = ep.catchAll
		} else {
			if sim.DebugEnabled {
				ep.dbg.putBytesDropped += uint64(pkt.Size)
			}
			ep.reject(pkt.Src, cmd, ErrNoWindow)
			return
		}
	}
	buf := w.Head()
	if buf == nil {
		if sim.DebugEnabled {
			ep.dbg.putBytesDropped += uint64(pkt.Size)
		}
		ep.reject(pkt.Src, cmd, ErrNoBuffer)
		return
	}

	size := pkt.Size
	eng := ep.eng
	key := nic.MsgKey{Src: pkt.Src, MsgID: cmd.msgID}

	// Reliable (wantAck) puts pass through the duplicate-aware assembler
	// before any placement or counting — but after every reject check, so
	// a rejected packet's bytes are never marked seen and its retransmit
	// counts fresh. Duplicates from overlapping attempts are discarded
	// here: they must not inflate counters, high-water marks or epoch-ops
	// progress, or a retransmit could falsely complete a holed buffer.
	var relDone bool
	if cmd.wantAck {
		if w.mode != Steered {
			panic("rvma: reliable put into a managed window (retransmit dedup needs offset placement)")
		}
		if cmd.msgOffset+cmd.pktOffset+size > buf.Region.Size() {
			if sim.DebugEnabled {
				ep.dbg.putBytesDropped += uint64(size)
			}
			ep.reject(pkt.Src, cmd, ErrNoBuffer)
			return
		}
		_, done, dup := ep.relAsm.Add(key, cmd.pktOffset, size, cmd.total)
		if dup {
			if sim.DebugEnabled {
				ep.dbg.putBytesDuplicate += uint64(size)
			}
			ep.Stats.DupPackets++
			if ep.relAsm.Done(key) {
				// Straggler of an already-placed message: the earlier ack
				// may itself have been lost, so re-ack.
				ep.sendAck(pkt.Src, cmd.msgID)
			}
			return
		}
		relDone = done
	}

	// Issue the payload DMA. The bus resource is FIFO, so the completion
	// write issued below (if any) is ordered after this data write, which
	// is the PCIe ordering guarantee the completion pointer relies on.
	// The steering decision, counter update and threshold check all happen
	// now, in NIC pipeline (packet-arrival) order — only the data DMA and
	// the completion-pointer write land later, in bus order. A hardware
	// completion unit works the same way: it cannot let a packet's bus
	// latency reorder its bookkeeping against the next packet's.
	busWait := ep.nic.Bus().Backlog(eng.Engine)
	dmaDone := ep.nic.Bus().TransferTime(eng.Engine, size)

	switch w.mode {
	case Steered:
		place := cmd.msgOffset + cmd.pktOffset
		if place+size > buf.Region.Size() {
			if sim.DebugEnabled {
				ep.dbg.putBytesDropped += uint64(size)
			}
			ep.reject(pkt.Src, cmd, ErrNoBuffer)
			return
		}
		if sim.DebugEnabled {
			ep.dbg.putBytesPlaced += uint64(size)
		}
		if ep.cfg.CarryData && cmd.data != nil {
			data := cmd.data
			base := buf.Region.Base + memory.Addr(place)
			eng.At(dmaDone, func() { ep.Memory().Write(base, data) })
		}
		if end := place + size; end > buf.HighWater {
			buf.HighWater = end
		}
		if w.etype == EpochBytes {
			w.counter += int64(size)
		}

	case Managed:
		// Stream placement: append at the fill pointer, splitting the
		// packet across segment buffers when it straddles a boundary —
		// the byte-counting NIC behavior §IV-B describes for sockets
		// semantics. Completions rotate buffers mid-packet as thresholds
		// are crossed.
		remaining := size
		dataOff := 0
		for remaining > 0 {
			head := w.Head()
			if head == nil {
				// Out of posted segments mid-packet: the tail is lost.
				if sim.DebugEnabled {
					ep.dbg.putBytesDropped += uint64(remaining)
				}
				ep.reject(pkt.Src, cmd, ErrNoBuffer)
				break
			}
			space := head.Region.Size() - head.Fill
			if space <= 0 {
				// A full-but-uncompleted segment means the threshold
				// exceeds the buffer size; nothing can ever complete it.
				if sim.DebugEnabled {
					ep.dbg.putBytesDropped += uint64(remaining)
				}
				ep.reject(pkt.Src, cmd, ErrNoBuffer)
				break
			}
			take := remaining
			if take > space {
				take = space
			}
			if sim.DebugEnabled {
				ep.dbg.putBytesPlaced += uint64(take)
			}
			if ep.cfg.CarryData && cmd.data != nil {
				chunk := cmd.data[dataOff : dataOff+take]
				base := head.Region.Base + memory.Addr(head.Fill)
				eng.At(dmaDone, func() { ep.Memory().Write(base, chunk) })
			}
			head.Fill += take
			if head.Fill > head.HighWater {
				head.HighWater = head.Fill
			}
			if w.etype == EpochBytes {
				w.counter += int64(take)
			}
			remaining -= take
			dataOff += take
			w.maybeComplete() // may rotate to the next segment
		}
	}

	msgDone := relDone
	if !cmd.wantAck {
		msgDone = ep.asm.Add(key, size, cmd.total)
	} else if relDone {
		ep.sendAck(pkt.Src, cmd.msgID)
	}
	if w.etype == EpochOps && msgDone {
		w.counter++
	}
	if msgDone {
		ep.Stats.PutsPlaced++
		ep.Stats.BytesPlaced += uint64(cmd.total)
		w.MessagesPlaced++
		w.BytesPlaced += uint64(cmd.total)
		// The initiator's span crosses to this node: the wire stage ends at
		// last-packet arrival, the place stage at the payload DMA; the
		// completion unit ends the span when this window's epoch completes.
		if sp := ep.reg.Span(metrics.SpanKey{Node: pkt.Src, ID: cmd.msgID}); sp != nil {
			sp.SetNode(ep.Node())
			// Wire wait is the fabric queueing the last packet accumulated;
			// place wait is the receive-bus backlog ahead of the payload DMA.
			sp.StageWait(eng.Now(), "wire", pkt.QueueWait)
			eng.At(dmaDone, func() { sp.StageWait(eng.Now(), "place", busWait) })
			w.pendingSpans = append(w.pendingSpans, sp)
		}
	}
	if !w.hwCounter {
		ep.Stats.CounterSpills++
		ep.mSpills.Add(1)
	}
	w.maybeComplete()
}

// reject drops a put/get and, when enabled, NACKs the initiator (§III-C:
// operations on closed mailboxes "are automatically discarded and may
// result in a NACK notification").
func (ep *Endpoint) reject(src int, cmd *command, reason error) {
	ep.Stats.Drops++
	ep.mDrops.Add(1)
	if reason == ErrNoBuffer {
		ep.mBufExhaust.Add(1)
	}
	if ep.tracer != nil {
		ep.tracer.Eventf(trace.CatRVMA, "node %d reject msg %d from %d: %v",
			ep.Node(), cmd.msgID, src, reason)
	}
	if !ep.cfg.NACKEnabled {
		return
	}
	ep.Stats.Nacks++
	ep.mNacks.Add(1)
	msgID := cmd.msgID
	op := cmd.op
	ep.nic.SendMessage(src, 0, func(off, n int) any {
		return &command{op: opNack, msgID: msgID, status: reason, length: int(op)}
	})
}

// sendAck emits the NIC-generated placement ack for a reliable put. Like
// RDMA's put-ack it rides InjectControl: no host bus crossing, just the
// send pipeline and the wire.
func (ep *Endpoint) sendAck(src int, msgID uint64) {
	ep.Stats.AcksSent++
	ep.nic.InjectControl(src, &command{op: opAck, msgID: msgID})
}

// handleAck resolves a reliable put. Duplicate acks (retransmit raced the
// first ack) find no pending operation and are ignored.
func (ep *Endpoint) handleAck(cmd *command) {
	rp, ok := ep.pendingRel[cmd.msgID]
	if !ok {
		return
	}
	delete(ep.pendingRel, cmd.msgID)
	at := rp.attempt
	if !at.Acked.Done() {
		at.Acked.Complete(ep.Engine(), nil)
	}
}

// handleNack resolves the pending operation's Nack future.
func (ep *Endpoint) handleNack(cmd *command) {
	eng := ep.eng
	if opcode(cmd.length) == opGetReq {
		if op, ok := ep.pendingGets[cmd.msgID]; ok {
			delete(ep.pendingGets, cmd.msgID)
			op.Nack.Complete(eng.Engine, cmd.status)
		}
		return
	}
	if rp, ok := ep.pendingRel[cmd.msgID]; ok {
		// Reliable puts survive NACKs: the operation stays pending (a
		// retransmit may land once the target posts a buffer); only the
		// current attempt learns of the rejection. Several packets of one
		// attempt can each draw a NACK, and a straggler NACK from an old
		// attempt can land after a retransmit started — both just re-fire
		// the recovery layer's bounded retry, so the guard is a cheap
		// Done check rather than attempt bookkeeping.
		if at := rp.attempt; !at.Nack.Done() {
			at.Nack.Complete(eng.Engine, cmd.status)
		}
		return
	}
	if op, ok := ep.pendingPuts[cmd.msgID]; ok {
		delete(ep.pendingPuts, cmd.msgID)
		// A NACKed put never completes at the target; close its span here.
		ep.reg.Span(metrics.SpanKey{Node: ep.Node(), ID: cmd.msgID}).EndNacked(eng.Now())
		op.Nack.Complete(eng.Engine, cmd.status)
	}
}

// handleGetReq serves a get: read the requested span of the active buffer
// over the bus, then stream the reply.
func (ep *Endpoint) handleGetReq(pkt *fabric.Packet, cmd *command) {
	w := ep.lut[cmd.vaddr]
	if w == nil || w.closed {
		ep.reject(pkt.Src, cmd, ErrNoWindow)
		return
	}
	buf := w.Head()
	if buf == nil || cmd.msgOffset+cmd.length > buf.Region.Size() {
		ep.reject(pkt.Src, cmd, ErrNoBuffer)
		return
	}
	ep.Stats.GetsServed++
	eng := ep.eng
	var data []byte
	if ep.cfg.CarryData {
		data = ep.Memory().Read(buf.Region.Base+memory.Addr(cmd.msgOffset), cmd.length)
	}
	// Bus read of the payload, then reply through the send pipeline.
	readDone := ep.nic.Bus().TransferTime(eng.Engine, cmd.length)
	src := pkt.Src
	getID := cmd.msgID
	length := cmd.length
	eng.At(readDone, func() {
		ep.nic.SendMessage(src, length, func(off, n int) any {
			var chunk []byte
			if data != nil {
				chunk = data[off : off+n]
			}
			return &command{
				op:        opGetReply,
				msgID:     getID,
				pktOffset: off,
				total:     length,
				data:      chunk,
			}
		})
	})
}

// handleGetReply assembles reply packets and resolves the get.
func (ep *Endpoint) handleGetReply(pkt *fabric.Packet, cmd *command) {
	op, ok := ep.pendingGets[cmd.msgID]
	if !ok {
		return // stale or duplicate
	}
	if ep.cfg.CarryData && cmd.data != nil {
		buf := ep.getBuf[cmd.msgID]
		if buf == nil {
			buf = make([]byte, cmd.total)
			ep.getBuf[cmd.msgID] = buf
		}
		copy(buf[cmd.pktOffset:], cmd.data)
	}
	if ep.getAsm.Add(nic.MsgKey{Src: pkt.Src, MsgID: cmd.msgID}, pkt.Size, cmd.total) ||
		(cmd.total == 0) {
		eng := ep.eng
		data := ep.getBuf[cmd.msgID]
		delete(ep.getBuf, cmd.msgID)
		delete(ep.pendingGets, cmd.msgID)
		// Landing the fetched bytes in host memory costs one bus transfer.
		done := ep.nic.Bus().TransferTime(eng.Engine, cmd.total)
		eng.At(done, func() { op.Done.Complete(eng.Engine, data) })
	}
}
