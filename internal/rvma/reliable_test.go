package rvma

import (
	"errors"
	"testing"

	"rvma/internal/fabric"
)

func TestPutNAckedCompletes(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, err := dst.InitWindow(0xAA, 4096, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.PostBuffer(4096); err != nil {
		t.Fatal(err)
	}
	var at *PutAttempt
	eng.Schedule(0, func() { _, at = src.PutNAcked(1, 0xAA, 0, 4096) })
	eng.Run()
	if !at.Acked.Done() {
		t.Fatal("ack never arrived")
	}
	if at.Nack.Done() {
		t.Fatal("unexpected NACK")
	}
	if dst.Stats.AcksSent != 1 || dst.Stats.PutsPlaced != 1 || win.Epoch() != 1 {
		t.Fatalf("acks=%d placed=%d epoch=%d", dst.Stats.AcksSent, dst.Stats.PutsPlaced, win.Epoch())
	}
	if len(src.pendingRel) != 0 {
		t.Fatalf("%d reliable ops still pending after ack", len(src.pendingRel))
	}
}

// TestClosedMailboxResolvesNack: a reliable put into a closed (or never
// opened) mailbox draws a NACK that resolves the attempt's Nack future —
// the signal the recovery layer retries on.
func TestClosedMailboxResolvesNack(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, err := dst.InitWindow(0xAB, 4096, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.PostBuffer(4096); err != nil {
		t.Fatal(err)
	}
	win.Close()
	var at *PutAttempt
	eng.Schedule(0, func() { _, at = src.PutNAcked(1, 0xAB, 0, 4096) })
	eng.Run()
	if at.Acked.Done() {
		t.Fatal("put into a closed mailbox was acked")
	}
	if !at.Nack.Done() {
		t.Fatal("NACK never resolved")
	}
	if err, _ := at.Nack.Value().(error); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("nack reason = %v, want ErrNoWindow", at.Nack.Value())
	}
}

// TestNoBufferNackThenRetransmitCompletes: a reliable put that finds no
// posted buffer is NACKed but stays pending; once the receiver posts a
// buffer, a retransmit of the same operation completes and is acked —
// the end-to-end NACK-driven recovery loop, driven by hand here (the
// recovery.Manager automates exactly these calls).
func TestNoBufferNackThenRetransmitCompletes(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, err := dst.InitWindow(0xAC, 4096, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	var rp *ReliablePut
	var first, second *PutAttempt
	eng.Schedule(0, func() { rp, first = src.PutNAcked(1, 0xAC, 0, 4096) })
	eng.Schedule(0, func() {
		first.Nack.OnComplete(func() {
			if err, _ := first.Nack.Value().(error); !errors.Is(err, ErrNoBuffer) {
				t.Errorf("nack reason = %v, want ErrNoBuffer", first.Nack.Value())
			}
			if _, err := win.PostBuffer(4096); err != nil {
				t.Errorf("post: %v", err)
				return
			}
			second = src.Retransmit(rp)
		})
	})
	eng.Run()
	if second == nil || !second.Acked.Done() {
		t.Fatal("retransmit after buffer post was not acked")
	}
	if win.Epoch() != 1 || dst.Stats.PutsPlaced != 1 {
		t.Fatalf("epoch=%d placed=%d, want 1/1", win.Epoch(), dst.Stats.PutsPlaced)
	}
	// Every packet of the bufferless first attempt drew its own NACK.
	wantNacks := uint64((4096 + fabric.DefaultConfig().MTU - 1) / fabric.DefaultConfig().MTU)
	if dst.Stats.Nacks != wantNacks {
		t.Fatalf("nacks = %d, want %d (one per rejected packet)", dst.Stats.Nacks, wantNacks)
	}
}

// TestRetransmitDuplicatesAreDiscarded overlaps two attempts of the same
// message on a lossless fabric: every packet of the second attempt is a
// duplicate and must not inflate placement counts, epochs or high-water
// marks — only re-trigger the ack.
func TestRetransmitDuplicatesAreDiscarded(t *testing.T) {
	fcfg := fabric.DefaultConfig()
	eng, src, dst := pair(t, DefaultConfig(), fcfg, 1)
	win, err := dst.InitWindow(0xAD, 4096, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Two buffers: the first attempt completes the epoch and rotates to
	// the second, so the duplicate packets still find a head buffer and
	// reach the dedup (instead of being rejected for lack of one).
	for i := 0; i < 2; i++ {
		if _, err := win.PostBuffer(4096); err != nil {
			t.Fatal(err)
		}
	}
	wantPkts := uint64((4096 + fcfg.MTU - 1) / fcfg.MTU)
	eng.Schedule(0, func() {
		rp, _ := src.PutNAcked(1, 0xAD, 0, 4096)
		src.Retransmit(rp) // immediately double-send the whole message
	})
	eng.Run()
	if dst.Stats.DupPackets != wantPkts {
		t.Fatalf("dup packets = %d, want %d", dst.Stats.DupPackets, wantPkts)
	}
	if dst.Stats.PutsPlaced != 1 || win.Epoch() != 1 {
		t.Fatalf("placed=%d epoch=%d, want exactly one completion", dst.Stats.PutsPlaced, win.Epoch())
	}
	if dst.Stats.AcksSent < 2 {
		t.Fatalf("acks = %d, want completion ack plus straggler re-ack", dst.Stats.AcksSent)
	}
}

// TestAbandonPutRetiresOperation: after the recovery layer gives up, a
// straggler ack must find nothing to resolve.
func TestAbandonPutRetiresOperation(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, err := dst.InitWindow(0xAE, 4096, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.PostBuffer(4096); err != nil {
		t.Fatal(err)
	}
	var at *PutAttempt
	eng.Schedule(0, func() {
		rp, a := src.PutNAcked(1, 0xAE, 0, 4096)
		at = a
		src.AbandonPut(rp) // give up before the ack returns
	})
	eng.Run()
	if at.Acked.Done() {
		t.Fatal("abandoned op's attempt was still acked")
	}
	if len(src.pendingRel) != 0 {
		t.Fatalf("%d reliable ops pending after abandon", len(src.pendingRel))
	}
	// The receiver still placed and acked the message; the ack just found
	// no pending operation.
	if dst.Stats.PutsPlaced != 1 || dst.Stats.AcksSent != 1 {
		t.Fatalf("placed=%d acks=%d", dst.Stats.PutsPlaced, dst.Stats.AcksSent)
	}
}
