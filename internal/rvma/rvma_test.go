package rvma

import (
	"bytes"
	"errors"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/memory"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// pair wires two RVMA endpoints through a one-switch fabric.
func pair(t *testing.T, cfg Config, fcfg fabric.Config, seed uint64) (*sim.Engine, *Endpoint, *Endpoint) {
	t.Helper()
	eng := sim.NewEngine(seed)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), cfg)
	b := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), cfg)
	return eng, a, b
}

func defaultPair(t *testing.T) (*sim.Engine, *Endpoint, *Endpoint) {
	return pair(t, DefaultConfig(), fabric.DefaultConfig(), 1)
}

func TestPutCompletesAtByteThreshold(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, err := dst.InitWindow(0x11FF0011, 1024, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := win.PostBuffer(1024)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var head, length uint64
	var doneAt sim.Time
	eng.Schedule(0, func() {
		src.Put(1, 0x11FF0011, 0, payload)
		win.NextCompletion().OnComplete(func() {
			h, l := buf.Cell.Get()
			head, length = uint64(h), uint64(l)
			doneAt = eng.Now()
		})
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("completion never fired")
	}
	if head != uint64(buf.Region.Base) || length != 1024 {
		t.Fatalf("cell = (%#x, %d), want (%#x, 1024)", head, length, buf.Region.Base)
	}
	got := dst.Memory().Read(buf.Region.Base, 1024)
	if !bytes.Equal(got, payload) {
		t.Fatal("placed data does not match payload")
	}
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", win.Epoch())
	}
	if dst.Stats.Completions != 1 || dst.Stats.PutsPlaced != 1 {
		t.Fatalf("stats: completions=%d placed=%d", dst.Stats.Completions, dst.Stats.PutsPlaced)
	}
}

func TestNoHandshakeRequired(t *testing.T) {
	// The defining RVMA property: an initiator that knows only (node,
	// mailbox) can put immediately — nothing is exchanged beforehand.
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(42, 64, EpochBytes)
	win.PostBuffer(64)
	completed := false
	eng.Schedule(0, func() {
		src.Put(1, 42, 0, make([]byte, 64))
		win.NextCompletion().OnComplete(func() { completed = true })
	})
	eng.Run()
	if !completed {
		t.Fatal("put without prior handshake did not complete")
	}
}

func TestOpsThreshold(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(7, 4, EpochOps) // complete after 4 operations
	win.PostBuffer(4096)
	var count int64
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			src.Put(1, 7, i*64, make([]byte, 64))
		}
		win.NextCompletion().OnComplete(func() {
			count = win.history[len(win.history)-1].Count
		})
	})
	eng.Run()
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 after 4 ops", win.Epoch())
	}
	if count != 4 {
		t.Fatalf("op count = %d, want 4", count)
	}
}

func TestMultiPacketPutCountsOneOp(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(9, 2, EpochOps)
	win.PostBuffer(16 * 1024)
	eng.Schedule(0, func() {
		// Two 5000-byte puts: each spans 3 packets but must count as ONE op.
		src.Put(1, 9, 0, make([]byte, 5000))
		src.Put(1, 9, 8000, make([]byte, 5000))
	})
	eng.Run()
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want exactly 1 (two ops, threshold 2)", win.Epoch())
	}
}

func TestTwoThresholdMessagesYieldTwoBuffers(t *testing.T) {
	// Paper §III-B: "sending two messages to the same RVMA address where
	// each message triggers the completion threshold will result in the
	// application receiving two separate buffers out of the bucket".
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(5, 256, EpochBytes)
	b1, _ := win.PostBuffer(256)
	b2, _ := win.PostBuffer(256)
	m1 := bytes.Repeat([]byte{0xAA}, 256)
	m2 := bytes.Repeat([]byte{0xBB}, 256)
	eng.Schedule(0, func() {
		src.Put(1, 5, 0, m1)
		src.Put(1, 5, 0, m2)
	})
	eng.Run()
	if win.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", win.Epoch())
	}
	if !bytes.Equal(dst.Memory().Read(b1.Region.Base, 256), m1) {
		t.Fatal("first buffer does not hold first message")
	}
	if !bytes.Equal(dst.Memory().Read(b2.Region.Base, 256), m2) {
		t.Fatal("second buffer does not hold second message")
	}
	if h1, _ := b1.Cell.Get(); h1 != b1.Region.Base {
		t.Fatal("first completion cell should point at first buffer")
	}
	if h2, _ := b2.Cell.Get(); h2 != b2.Region.Base {
		t.Fatal("second completion cell should point at second buffer")
	}
}

func TestDistinctMailboxesDoNotAssemble(t *testing.T) {
	// Paper §III-B: puts to different mailbox addresses land in different
	// buckets — they never assemble a contiguous payload.
	eng, src, dst := defaultPair(t)
	w1, _ := dst.InitWindow(0x11FF0011, 32, EpochBytes)
	w2, _ := dst.InitWindow(0x11FF0031, 32, EpochBytes)
	b1, _ := w1.PostBuffer(64)
	b2, _ := w2.PostBuffer(64)
	eng.Schedule(0, func() {
		src.Put(1, 0x11FF0011, 0, bytes.Repeat([]byte{1}, 32))
		src.Put(1, 0x11FF0031, 0, bytes.Repeat([]byte{2}, 32))
	})
	eng.Run()
	if w1.Epoch() != 1 || w2.Epoch() != 1 {
		t.Fatalf("epochs = %d,%d, want 1,1", w1.Epoch(), w2.Epoch())
	}
	if dst.Memory().Read(b1.Region.Base, 1)[0] != 1 || dst.Memory().Read(b2.Region.Base, 1)[0] != 2 {
		t.Fatal("messages crossed mailboxes")
	}
}

func TestOffsetsAssembleContiguousMessage(t *testing.T) {
	// Paper §III-B: a contiguous 64-byte payload is built by sending two
	// 32-byte puts to the SAME mailbox with offsets 0 and 32.
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(3, 64, EpochBytes)
	buf, _ := win.PostBuffer(64)
	lo := bytes.Repeat([]byte{0xCC}, 32)
	hi := bytes.Repeat([]byte{0xDD}, 32)
	eng.Schedule(0, func() {
		src.Put(1, 3, 0, lo)
		src.Put(1, 3, 32, hi)
	})
	eng.Run()
	got := dst.Memory().Read(buf.Region.Base, 64)
	if !bytes.Equal(got[:32], lo) || !bytes.Equal(got[32:], hi) {
		t.Fatal("offset puts did not assemble contiguously")
	}
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", win.Epoch())
	}
}

func TestOutOfOrderDeliveryStillCorrect(t *testing.T) {
	// The §IV-D property: under adaptive routing with jittered paths,
	// packets arrive out of order, yet offset placement + byte counting
	// yield a byte-identical buffer and exactly one completion.
	for seed := uint64(1); seed <= 10; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteAdaptive
		fcfg.AdaptiveJitter = 0.8
		eng, src, dst := pair(t, DefaultConfig(), fcfg, seed)
		const total = 64 * 1024
		win, _ := dst.InitWindow(11, total, EpochBytes)
		buf, _ := win.PostBuffer(total)
		payload := make([]byte, total)
		for i := range payload {
			payload[i] = byte(i*13 + i>>8)
		}
		completions := 0
		eng.Schedule(0, func() {
			src.Put(1, 11, 0, payload)
			win.NextCompletion().OnComplete(func() { completions++ })
		})
		eng.Run()
		if completions != 1 {
			t.Fatalf("seed %d: %d completions, want 1", seed, completions)
		}
		if !bytes.Equal(dst.Memory().Read(buf.Region.Base, total), payload) {
			t.Fatalf("seed %d: buffer corrupted by out-of-order placement", seed)
		}
	}
}

func TestNackOnUnknownMailbox(t *testing.T) {
	eng, src, _ := defaultPair(t)
	var nackErr error
	eng.Schedule(0, func() {
		op := src.Put(1, 0xDEAD, 0, make([]byte, 64))
		op.Nack.OnComplete(func() { nackErr = op.Nack.Value().(error) })
	})
	eng.Run()
	if !errors.Is(nackErr, ErrNoWindow) {
		t.Fatalf("nack error = %v, want ErrNoWindow", nackErr)
	}
}

func TestNackOnClosedWindow(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(8, 64, EpochBytes)
	win.PostBuffer(64)
	win.Close()
	nacked := false
	eng.Schedule(0, func() {
		op := src.Put(1, 8, 0, make([]byte, 64))
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if !nacked {
		t.Fatal("put to closed window must NACK")
	}
	if dst.Stats.Nacks != 1 || dst.Stats.Drops != 1 {
		t.Fatalf("stats: nacks=%d drops=%d", dst.Stats.Nacks, dst.Stats.Drops)
	}
}

func TestNackDisabledDropsSilently(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NACKEnabled = false
	eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
	nacked := false
	eng.Schedule(0, func() {
		op := src.Put(1, 0xDEAD, 0, make([]byte, 64))
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if nacked {
		t.Fatal("NACK sent despite NACKEnabled=false")
	}
	if dst.Stats.Drops != 1 || dst.Stats.Nacks != 0 {
		t.Fatalf("stats: drops=%d nacks=%d", dst.Stats.Drops, dst.Stats.Nacks)
	}
}

func TestCatchAllMailbox(t *testing.T) {
	eng, src, dst := defaultPair(t)
	catch, _ := dst.InitWindow(0xCA7C4A11, 1<<20, EpochBytes)
	catch.PostBuffer(4096)
	dst.SetCatchAll(catch)
	eng.Schedule(0, func() {
		src.Put(1, 0xDEAD, 0, bytes.Repeat([]byte{0xEE}, 128))
	})
	eng.Run()
	if dst.Stats.CatchAllHits == 0 {
		t.Fatal("unknown-mailbox put should land in catch-all")
	}
	if dst.Stats.Drops != 0 {
		t.Fatal("catch-all hit should not count as drop")
	}
	if got := dst.Memory().Read(catch.Head().Region.Base, 1)[0]; got != 0xEE {
		t.Fatal("catch-all buffer did not receive the payload")
	}
}

func TestBufferOverrunNacks(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(2, 1024, EpochBytes)
	win.PostBuffer(128)
	nacked := false
	eng.Schedule(0, func() {
		op := src.Put(1, 2, 100, make([]byte, 64)) // 100+64 > 128
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if !nacked {
		t.Fatal("overrun put must NACK")
	}
}

func TestPutWithNoBufferPosted(t *testing.T) {
	eng, src, dst := defaultPair(t)
	dst.InitWindow(4, 64, EpochBytes) // window exists, queue empty
	nacked := false
	eng.Schedule(0, func() {
		op := src.Put(1, 4, 0, make([]byte, 64))
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if !nacked {
		t.Fatal("put with no posted buffer must NACK")
	}
}

func TestIncEpochEarlyCompletion(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(6, 4096, EpochBytes)
	buf, _ := win.PostBuffer(4096)
	var head uint64
	var length int
	eng.Schedule(0, func() {
		op := src.Put(1, 6, 0, make([]byte, 1000)) // below threshold
		op.Local.OnComplete(func() {
			// Give the last packet time to land, then hand the partial
			// buffer to software.
			eng.Schedule(10*sim.Microsecond, func() {
				f, err := win.IncEpoch()
				if err != nil {
					t.Errorf("IncEpoch: %v", err)
					return
				}
				f.OnComplete(func() {
					h, l := buf.Cell.Get()
					head, length = uint64(h), l
				})
			})
		})
	})
	eng.Run()
	if head != uint64(buf.Region.Base) {
		t.Fatalf("cell head = %#x, want %#x", head, buf.Region.Base)
	}
	if length != 1000 {
		t.Fatalf("partial completion length = %d, want 1000", length)
	}
	if win.Epoch() != 1 || dst.Stats.EarlyCompletions != 1 {
		t.Fatalf("epoch=%d early=%d", win.Epoch(), dst.Stats.EarlyCompletions)
	}
}

func TestIncEpochErrors(t *testing.T) {
	_, _, dst := defaultPair(t)
	win, _ := dst.InitWindow(1, 64, EpochBytes)
	if _, err := win.IncEpoch(); !errors.Is(err, ErrNoBuffer) {
		t.Fatalf("IncEpoch with empty queue: %v, want ErrNoBuffer", err)
	}
	win.PostBuffer(64)
	win.Close()
	if _, err := win.IncEpoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("IncEpoch on closed window: %v, want ErrClosed", err)
	}
}

func TestGetBufPtrs(t *testing.T) {
	_, _, dst := defaultPair(t)
	win, _ := dst.InitWindow(1, 64, EpochBytes)
	var bufs []*Buffer
	for i := 0; i < 3; i++ {
		b, _ := win.PostBuffer(64)
		bufs = append(bufs, b)
	}
	out := make([]memory.Addr, 5)
	n := win.GetBufPtrs(out)
	if n != 3 {
		t.Fatalf("GetBufPtrs = %d, want 3", n)
	}
	for i := 0; i < 3; i++ {
		if out[i] != bufs[i].NotificationAddr() {
			t.Fatalf("ptr %d = %#x, want %#x", i, out[i], bufs[i].NotificationAddr())
		}
	}
	small := make([]memory.Addr, 2)
	if n := win.GetBufPtrs(small); n != 2 {
		t.Fatalf("truncated GetBufPtrs = %d, want 2", n)
	}
}

func TestWindowLifecycleErrors(t *testing.T) {
	_, _, dst := defaultPair(t)
	if _, err := dst.InitWindow(1, 0, EpochBytes); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero threshold: %v", err)
	}
	win, err := dst.InitWindow(1, 64, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.InitWindow(1, 64, EpochBytes); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("duplicate mailbox: %v", err)
	}
	if _, err := win.PostBuffer(0); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("zero-size buffer: %v", err)
	}
	win.Close()
	win.Close() // idempotent
	if _, err := win.PostBuffer(64); !errors.Is(err, ErrClosed) {
		t.Fatalf("post after close: %v", err)
	}
	if dst.LUTSize() != 0 {
		t.Fatalf("LUT size after close = %d, want 0", dst.LUTSize())
	}
}

func TestRewindHistory(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(12, 64, EpochBytes)
	var regions []memory.Addr
	for i := 0; i < 3; i++ {
		b, _ := win.PostBuffer(64)
		regions = append(regions, b.Region.Base)
	}
	eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			src.Put(1, 12, 0, bytes.Repeat([]byte{byte(i + 1)}, 64))
		}
	})
	eng.Run()
	if win.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", win.Epoch())
	}
	// Rewind(1) = most recent epoch (value 3), Rewind(3) = oldest retained.
	for k := 1; k <= 3; k++ {
		b, err := win.Rewind(k)
		if err != nil {
			t.Fatalf("Rewind(%d): %v", k, err)
		}
		wantVal := byte(4 - k)
		if got := dst.Memory().Read(b.Region.Base, 1)[0]; got != wantVal {
			t.Fatalf("Rewind(%d) buffer holds %d, want %d", k, got, wantVal)
		}
		if b.Region.Base != regions[3-k] {
			t.Fatalf("Rewind(%d) returned wrong buffer", k)
		}
	}
	if _, err := win.Rewind(4); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("Rewind past history: %v", err)
	}
	if _, err := win.Rewind(0); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("Rewind(0): %v", err)
	}
}

func TestHistoryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryDepth = 2
	eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
	win, _ := dst.InitWindow(13, 16, EpochBytes)
	for i := 0; i < 5; i++ {
		win.PostBuffer(16)
	}
	eng.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			src.Put(1, 13, 0, make([]byte, 16))
		}
	})
	eng.Run()
	if win.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", win.Epoch())
	}
	if win.HistoryDepth() != 2 {
		t.Fatalf("history depth = %d, want 2 (bounded)", win.HistoryDepth())
	}
}

func TestGetRoundTrip(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(14, 1<<20, EpochBytes)
	buf, _ := win.PostBuffer(8192)
	content := make([]byte, 8192)
	for i := range content {
		content[i] = byte(i * 3)
	}
	dst.Memory().Write(buf.Region.Base, content)
	var got []byte
	eng.Schedule(0, func() {
		op := src.Get(1, 14, 1000, 5000)
		op.Done.OnComplete(func() { got = op.Done.Value().([]byte) })
	})
	eng.Run()
	if got == nil {
		t.Fatal("get never completed")
	}
	if !bytes.Equal(got, content[1000:6000]) {
		t.Fatal("get returned wrong bytes")
	}
	if dst.Stats.GetsServed != 1 {
		t.Fatalf("gets served = %d", dst.Stats.GetsServed)
	}
}

func TestGetNackOnMissingWindow(t *testing.T) {
	eng, src, _ := defaultPair(t)
	nacked := false
	eng.Schedule(0, func() {
		op := src.Get(1, 0xDEAD, 0, 64)
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if !nacked {
		t.Fatal("get from missing window must NACK")
	}
}

func TestManagedModeAppendsInArrivalOrder(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindowMode(15, 96, EpochBytes, Managed)
	buf, _ := win.PostBuffer(96)
	eng.Schedule(0, func() {
		// Managed (stream) mode ignores offsets; bytes land at the fill
		// pointer in arrival order, like a socket.
		src.Put(1, 15, 999999, bytes.Repeat([]byte{1}, 32)) // offset ignored
		src.Put(1, 15, 0, bytes.Repeat([]byte{2}, 32))
		src.Put(1, 15, 0, bytes.Repeat([]byte{3}, 32))
	})
	eng.Run()
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", win.Epoch())
	}
	got := dst.Memory().Read(buf.Region.Base, 96)
	for i := 0; i < 96; i++ {
		want := byte(i/32 + 1)
		if got[i] != want {
			t.Fatalf("managed stream byte %d = %d, want %d", i, got[i], want)
		}
	}
	if _, l := buf.Cell.Get(); l != 96 {
		t.Fatalf("managed completion length = %d, want 96", l)
	}
}

func TestCounterSpillPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHWCounters = 1
	eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
	w1, _ := dst.InitWindow(20, 64, EpochBytes)
	w2, _ := dst.InitWindow(21, 64, EpochBytes)
	w1.PostBuffer(64) // claims the only HW counter
	w2.PostBuffer(64) // spills
	eng.Schedule(0, func() {
		src.Put(1, 20, 0, make([]byte, 64))
		src.Put(1, 21, 0, make([]byte, 64))
	})
	eng.Run()
	if w1.Epoch() != 1 || w2.Epoch() != 1 {
		t.Fatalf("epochs = %d,%d; spilled window must still complete", w1.Epoch(), w2.Epoch())
	}
	if dst.Stats.CounterSpills == 0 {
		t.Fatal("expected counter spills with MaxHWCounters=1")
	}
}

func TestCounterFreedOnCompletionReusable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHWCounters = 1
	eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
	w1, _ := dst.InitWindow(20, 64, EpochBytes)
	w1.PostBuffer(64)
	eng.Schedule(0, func() { src.Put(1, 20, 0, make([]byte, 64)) })
	eng.Run()
	if w1.Epoch() != 1 {
		t.Fatal("first window never completed")
	}
	// The counter freed when w1's queue drained; a new window can claim it.
	w2, _ := dst.InitWindow(21, 64, EpochBytes)
	w2.PostBuffer(64)
	spillsBefore := dst.Stats.CounterSpills
	eng.Schedule(0, func() { src.Put(1, 21, 0, make([]byte, 64)) })
	eng.Run()
	if w2.Epoch() != 1 {
		t.Fatal("second window never completed")
	}
	if dst.Stats.CounterSpills != spillsBefore {
		t.Fatal("second window should reuse the freed HW counter, not spill")
	}
}

func TestWatchBufferMWaitVsPoll(t *testing.T) {
	run := func(mode NotifyMode) sim.Time {
		cfg := DefaultConfig()
		cfg.Notification = mode
		eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
		win, _ := dst.InitWindow(30, 256, EpochBytes)
		buf, _ := win.PostBuffer(256)
		var at sim.Time
		eng.Schedule(0, func() {
			n := dst.WatchBuffer(buf)
			n.Done.OnComplete(func() { at = eng.Now() })
			src.Put(1, 30, 0, make([]byte, 256))
		})
		eng.Run()
		if at == 0 {
			t.Fatalf("%v notification never fired", mode)
		}
		return at
	}
	mwait := run(NotifyMWait)
	poll := run(NotifyPoll)
	if mwait > poll {
		t.Fatalf("MWait (%v) should observe completion no later than polling (%v)", mwait, poll)
	}
}

func TestWatchAlreadyCompletedBuffer(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(31, 64, EpochBytes)
	buf, _ := win.PostBuffer(64)
	var observed [2]uint64
	eng.Schedule(0, func() { src.Put(1, 31, 0, make([]byte, 64)) })
	eng.Schedule(sim.Millisecond, func() {
		n := dst.WatchBuffer(buf)
		n.Done.OnComplete(func() { observed = n.Done.Value().([2]uint64) })
	})
	eng.Run()
	if observed[0] != uint64(buf.Region.Base) || observed[1] != 64 {
		t.Fatalf("late watch observed (%#x,%d)", observed[0], observed[1])
	}
}

func TestNotificationCancel(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(32, 64, EpochBytes)
	buf, _ := win.PostBuffer(64)
	fired := false
	eng.Schedule(0, func() {
		n := dst.WatchBuffer(buf)
		n.Done.OnComplete(func() { fired = true })
		n.Cancel()
		src.Put(1, 32, 0, make([]byte, 64))
	})
	eng.Run()
	if fired {
		t.Fatal("canceled notification fired")
	}
	if dst.Memory().WatcherCount() != 0 {
		t.Fatal("watcher leaked after cancel")
	}
}

func TestPutNTimingOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CarryData = false
	eng, src, dst := pair(t, cfg, fabric.DefaultConfig(), 1)
	win, _ := dst.InitWindow(33, 4096, EpochBytes)
	win.PostBuffer(4096)
	done := false
	eng.Schedule(0, func() {
		src.PutN(1, 33, 0, 4096)
		win.NextCompletion().OnComplete(func() { done = true })
	})
	eng.Run()
	if !done {
		t.Fatal("timing-only put did not complete the epoch")
	}
}

func TestWhenPlaced(t *testing.T) {
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindow(40, 1<<40, EpochBytes) // never auto-completes
	win.PostBuffer(1 << 16)
	var at sim.Time
	eng.Schedule(0, func() {
		f := win.WhenPlaced(3, 100*sim.Nanosecond)
		f.OnComplete(func() { at = eng.Now() })
		src.PutN(1, 40, 0, 256)
		src.PutN(1, 40, 1024, 256)
	})
	// The third message arrives much later; WhenPlaced must wait for it.
	eng.Schedule(50*sim.Microsecond, func() { src.PutN(1, 40, 2048, 256) })
	eng.Run()
	if at < 50*sim.Microsecond {
		t.Fatalf("WhenPlaced resolved at %v, before the third message", at)
	}
	if win.MessagesPlaced != 3 {
		t.Fatalf("placed = %d", win.MessagesPlaced)
	}
	// Already-satisfied WhenPlaced resolves promptly.
	done := false
	eng.Schedule(0, func() {
		win.WhenPlaced(3, 100*sim.Nanosecond).OnComplete(func() { done = true })
	})
	eng.Run()
	if !done {
		t.Fatal("satisfied WhenPlaced never resolved")
	}
}

func TestGetMultiPacketOverAdaptive(t *testing.T) {
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteAdaptive
	fcfg.AdaptiveJitter = 0.5
	eng, src, dst := pair(t, DefaultConfig(), fcfg, 5)
	win, _ := dst.InitWindow(41, 1<<40, EpochBytes)
	buf, _ := win.PostBuffer(32 * 1024)
	content := make([]byte, 32*1024)
	for i := range content {
		content[i] = byte(i * 17)
	}
	dst.Memory().Write(buf.Region.Base, content)
	var got []byte
	eng.Schedule(0, func() {
		op := src.Get(1, 41, 0, 32*1024)
		op.Done.OnComplete(func() { got = op.Done.Value().([]byte) })
	})
	eng.Run()
	if !bytes.Equal(got, content) {
		t.Fatal("multi-packet get corrupted under adaptive routing")
	}
}

func TestManagedModeSplitsAcrossSegments(t *testing.T) {
	// A put larger than the remaining space of the head segment must be
	// split across segment buffers (stream hardware semantics), not
	// rejected.
	eng, src, dst := defaultPair(t)
	win, _ := dst.InitWindowMode(42, 64, EpochBytes, Managed)
	b1, _ := win.PostBuffer(64)
	b2, _ := win.PostBuffer(64)
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	eng.Schedule(0, func() { src.Put(1, 42, 0, payload) })
	eng.Run()
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (first segment filled)", win.Epoch())
	}
	if dst.Stats.Drops != 0 {
		t.Fatalf("drops = %d; straddling put must not drop", dst.Stats.Drops)
	}
	got1 := dst.Memory().Read(b1.Region.Base, 64)
	got2 := dst.Memory().Read(b2.Region.Base, 32)
	if !bytes.Equal(got1, payload[:64]) || !bytes.Equal(got2, payload[64:]) {
		t.Fatal("split placement corrupted the stream")
	}
}
