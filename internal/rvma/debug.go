package rvma

import "rvma/internal/sim"

// This file is the endpoint's simdebug invariant layer. The accounting
// fields live on Endpoint in every build, but every update and every
// check is guarded by `if sim.DebugEnabled`, so without the simdebug
// build tag the whole layer compiles to nothing.

// debugAccounting tracks put-payload byte conservation on the receive
// path: every byte that arrives in a put packet must end up either
// placed into a posted buffer or explicitly dropped — bytes can neither
// vanish nor be invented by the placement logic.
type debugAccounting struct {
	putBytesArrived   uint64 // payload bytes of put packets entering handlePut
	putBytesPlaced    uint64 // bytes steered or appended into buffers
	putBytesDropped   uint64 // bytes discarded by rejects (including lost tails)
	putBytesDuplicate uint64 // retransmit duplicates discarded by dedup
}

// debugCheckEndpoint asserts the endpoint-level conservation laws after
// each received packet has been fully handled:
//
//   - put-byte conservation: arrived == placed + dropped + duplicate
//     (duplicates are retransmit re-hits the dedup layer discarded)
//   - a NACK is only ever sent for a drop: Nacks <= Drops
//   - per window: the completion counter never goes negative, and no
//     buffer claims more bytes than its region holds
func (ep *Endpoint) debugCheckEndpoint() {
	sim.Assertf(ep.dbg.putBytesArrived == ep.dbg.putBytesPlaced+ep.dbg.putBytesDropped+ep.dbg.putBytesDuplicate,
		"rvma node %d put-byte conservation: arrived %d != placed %d + dropped %d + duplicate %d",
		ep.Node(), ep.dbg.putBytesArrived, ep.dbg.putBytesPlaced, ep.dbg.putBytesDropped, ep.dbg.putBytesDuplicate)
	sim.Assertf(ep.Stats.Nacks <= ep.Stats.Drops,
		"rvma node %d sent %d NACKs for only %d drops", ep.Node(), ep.Stats.Nacks, ep.Stats.Drops)
	//rvmalint:allow maprange -- order-independent assertions, no state writes
	for vaddr, w := range ep.lut {
		sim.Assertf(w.counter >= 0,
			"rvma node %d win %#x completion counter went negative: %d", ep.Node(), vaddr, w.counter)
		sim.Assertf(w.epoch >= 0,
			"rvma node %d win %#x epoch went negative: %d", ep.Node(), vaddr, w.epoch)
		for _, b := range w.queue {
			sim.Assertf(b.HighWater <= b.Region.Size(),
				"rvma node %d win %#x buffer high-water %d exceeds region size %d",
				ep.Node(), vaddr, b.HighWater, b.Region.Size())
			sim.Assertf(b.Fill <= b.Region.Size(),
				"rvma node %d win %#x buffer fill %d exceeds region size %d",
				ep.Node(), vaddr, b.Fill, b.Region.Size())
		}
	}
}
