package rvma

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// PutOp tracks one initiated put.
type PutOp struct {
	// Local completes when the initiating NIC has handed the last packet
	// to the fabric (the local buffer is reusable).
	Local *sim.Future
	// Nack completes only if the target NACKed the operation (closed or
	// unknown mailbox, buffer overrun); its value is the error. Puts to
	// healthy mailboxes never resolve Nack — RVMA puts are unacknowledged,
	// which is exactly why they need no return traffic on the critical
	// path.
	Nack *sim.Future

	msgID uint64
}

// Put initiates a transfer of data to mailbox vaddr on node dst, placing
// it at the given offset within the target's active buffer (the paper's
// RVMA_Put; the offset is the mechanism that makes placement independent
// of packet arrival order, §IV-D). No handshake precedes the put: the
// initiator needs only (node, vaddr), never a physical address.
//
// Host software overhead (one post) is charged before the NIC pipeline.
func (ep *Endpoint) Put(dst int, vaddr VAddr, offset int, data []byte) *PutOp {
	return ep.put(dst, vaddr, offset, len(data), data)
}

// PutN is Put without payload bytes: only sizes and timing flow through
// the simulation. Large-scale motif runs use it to avoid materializing
// gigabytes of payload.
func (ep *Endpoint) PutN(dst int, vaddr VAddr, offset, size int) *PutOp {
	return ep.put(dst, vaddr, offset, size, nil)
}

func (ep *Endpoint) put(dst int, vaddr VAddr, offset, size int, data []byte) *PutOp {
	if size < 0 || offset < 0 {
		panic(fmt.Sprintf("rvma: put with negative size %d or offset %d", size, offset))
	}
	ep.Stats.PutsInitiated++
	op := &PutOp{Local: sim.NewFuture(), Nack: sim.NewFuture(), msgID: ep.nextMsgID}
	ep.nextMsgID++
	ep.pendingPuts[op.msgID] = op

	eng := ep.eng
	sp := ep.reg.BeginSpan(eng.Now(), metrics.SpanKey{Node: ep.Node(), ID: op.msgID}, "rvma.put", ep.Node())
	post := ep.nic.Profile().HostPostOverhead
	eng.Schedule(post, func() {
		sp.Stage(eng.Now(), "host_post")
		// NIC queue depth at post time: the part of the nic_tx stage the
		// message spends behind earlier sends rather than being pipelined.
		txWait := ep.nic.SendBacklog() + ep.nic.DMABacklog()
		f := ep.nic.SendMessage(dst, size, func(off, n int) any {
			var chunk []byte
			if data != nil && ep.cfg.CarryData {
				chunk = data[off : off+n]
			}
			return &command{
				op:        opPut,
				msgID:     op.msgID,
				vaddr:     vaddr,
				msgOffset: offset,
				pktOffset: off,
				total:     size,
				data:      chunk,
			}
		})
		f.OnComplete(func() {
			sp.StageWait(eng.Now(), "nic_tx", txWait)
			op.Local.Complete(eng.Engine, nil)
		})
	})
	return op
}

// ReliablePut tracks a put whose target acknowledges full placement — the
// sender-side handle the recovery layer drives. The wire protocol is the
// ordinary unacknowledged put plus one NIC-generated ack control packet
// on full reassembly, so the data path the paper argues for is unchanged;
// only senders that opt into timeout/retransmit pay for return traffic.
type ReliablePut struct {
	dst    int
	vaddr  VAddr
	offset int
	size   int
	msgID  uint64

	attempt *PutAttempt
}

// MsgID returns the operation's wire message id (stable across attempts:
// retransmits reuse it so the target can deduplicate packets).
func (rp *ReliablePut) MsgID() uint64 { return rp.msgID }

// PutAttempt is one wire attempt of a reliable put. Each attempt gets
// fresh futures because futures are one-shot and every attempt can fail
// independently.
type PutAttempt struct {
	// Local completes when the initiating NIC has handed the attempt's
	// last packet to the fabric.
	Local *sim.Future
	// Acked completes when the target acknowledged full placement of the
	// message (any attempt's packets may have contributed).
	Acked *sim.Future
	// Nack completes if the target rejected a packet of this operation;
	// its value is the error.
	Nack *sim.Future
}

// PutNAcked initiates a reliable put (no payload bytes, like PutN) and
// returns the operation handle plus its first attempt. The target window
// must be Steered: offset-carrying packets are what make retransmitted
// duplicates exact re-hits the receiver can discard.
func (ep *Endpoint) PutNAcked(dst int, vaddr VAddr, offset, size int) (*ReliablePut, *PutAttempt) {
	if size < 0 || offset < 0 {
		panic(fmt.Sprintf("rvma: put with negative size %d or offset %d", size, offset))
	}
	rp := &ReliablePut{dst: dst, vaddr: vaddr, offset: offset, size: size, msgID: ep.nextMsgID}
	ep.nextMsgID++
	ep.pendingRel[rp.msgID] = rp
	sp := ep.reg.BeginSpan(ep.Engine().Now(), metrics.SpanKey{Node: ep.Node(), ID: rp.msgID}, "rvma.put", ep.Node())
	return rp, ep.sendAttempt(rp, sp)
}

// Retransmit re-sends a reliable put that has neither been acked nor
// abandoned, reusing the message id so the target deduplicates against
// packets of earlier attempts, and returns the fresh attempt. The attempt
// rides the message's existing span with an incremented attempt tag — no
// orphan spans — unless the span already ended (the target completed it
// off an earlier attempt whose ack is still in flight), in which case the
// attempt is unrecorded by design.
func (ep *Endpoint) Retransmit(rp *ReliablePut) *PutAttempt {
	if _, ok := ep.pendingRel[rp.msgID]; !ok {
		panic(fmt.Sprintf("rvma: retransmit of msg %d that is not pending", rp.msgID))
	}
	sp := ep.reg.Span(metrics.SpanKey{Node: ep.Node(), ID: rp.msgID})
	sp.NextAttempt(ep.Engine().Now())
	return ep.sendAttempt(rp, sp)
}

// AbandonPut drops a reliable put the recovery layer has given up on, so
// a straggler ack cannot resolve a retired operation. The message's span
// (if still open) closes with status "abandoned" instead of leaking.
func (ep *Endpoint) AbandonPut(rp *ReliablePut) {
	delete(ep.pendingRel, rp.msgID)
	ep.reg.Span(metrics.SpanKey{Node: ep.Node(), ID: rp.msgID}).EndAbandoned(ep.Engine().Now())
}

// sendAttempt issues one wire attempt of rp. The first attempt opens the
// message span; retransmits ride the existing one.
func (ep *Endpoint) sendAttempt(rp *ReliablePut, sp *metrics.Span) *PutAttempt {
	ep.Stats.PutsInitiated++
	at := &PutAttempt{Local: sim.NewFuture(), Acked: sim.NewFuture(), Nack: sim.NewFuture()}
	rp.attempt = at

	eng := ep.eng
	post := ep.nic.Profile().HostPostOverhead
	eng.Schedule(post, func() {
		sp.Stage(eng.Now(), "host_post")
		txWait := ep.nic.SendBacklog() + ep.nic.DMABacklog()
		f := ep.nic.SendMessage(rp.dst, rp.size, func(off, n int) any {
			return &command{
				op:        opPut,
				msgID:     rp.msgID,
				vaddr:     rp.vaddr,
				msgOffset: rp.offset,
				pktOffset: off,
				total:     rp.size,
				wantAck:   true,
			}
		})
		f.OnComplete(func() {
			sp.StageWait(eng.Now(), "nic_tx", txWait)
			at.Local.Complete(eng.Engine, nil)
		})
	})
	return at
}

// GetOp tracks one initiated get.
type GetOp struct {
	// Done completes when the full reply has arrived; in CarryData mode
	// its value is the fetched []byte.
	Done *sim.Future
	// Nack completes if the target refused the get.
	Nack *sim.Future

	getID uint64
}

// Get fetches length bytes at offset from the *active* buffer of mailbox
// vaddr on node dst. The paper names get/read as part of a comprehensive
// RVMA specification (§III-C); like Put it needs no pre-negotiated
// physical address. The target NIC reads the region over its bus and
// streams a (possibly multi-packet) reply.
func (ep *Endpoint) Get(dst int, vaddr VAddr, offset, length int) *GetOp {
	if length <= 0 || offset < 0 {
		panic(fmt.Sprintf("rvma: get with length %d offset %d", length, offset))
	}
	op := &GetOp{Done: sim.NewFuture(), Nack: sim.NewFuture(), getID: ep.nextMsgID}
	ep.nextMsgID++
	ep.pendingGets[op.getID] = op

	eng := ep.eng
	post := ep.nic.Profile().HostPostOverhead
	eng.Schedule(post, func() {
		ep.nic.SendMessage(dst, 0, func(off, n int) any {
			return &command{
				op:        opGetReq,
				msgID:     op.getID,
				vaddr:     vaddr,
				msgOffset: offset,
				length:    length,
			}
		})
	})
	return op
}
