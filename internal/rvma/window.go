package rvma

import (
	"fmt"

	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/sim"
	"rvma/internal/trace"
)

// Buffer is one receive buffer attached to a window's mailbox. Every
// buffer carries its own completion cell (the paper's completion pointer +
// length pair on one cache line) so completions can be waited on
// individually, without a shared completion queue (§IV-C).
type Buffer struct {
	Region *memory.Region
	Cell   *memory.CompletionCell

	// Epoch is the window epoch this buffer served (assigned when the
	// buffer becomes the active head).
	Epoch int64
	// Count is the counter value this buffer's epoch consumed: the
	// threshold for hardware completions, the partial count for IncEpoch
	// completions. It is set when the buffer completes.
	Count int64
	// HighWater is the highest byte offset written plus one — the length
	// the completion unit reports.
	HighWater int
	// Fill is the append position for Managed (stream) mode.
	Fill int
	// CompletedAt records when the completion unit finished this buffer
	// (zero while active/queued).
	CompletedAt sim.Time
	completed   bool
	// completing marks a threshold crossing whose (spilled-counter)
	// completion is pending, so late packets can't double-complete it.
	completing bool
}

// Completed reports whether the completion unit has finished this buffer.
func (b *Buffer) Completed() bool { return b.completed }

// NotificationAddr returns the buffer's completion pointer address: the
// notification_ptr the paper's RVMA_Post_buffer hands back to the caller.
func (b *Buffer) NotificationAddr() memory.Addr { return b.Cell.Addr() }

// Window is an RVMA window: one mailbox virtual address plus its queue of
// posted buffers, threshold, epoch counter and completion history.
type Window struct {
	ep        *Endpoint
	vaddr     VAddr
	threshold int64
	etype     EpochType
	mode      Mode

	queue   []*Buffer // queue[0] is the active head buffer
	history []*Buffer // most recent completed buffers, oldest first
	epoch   int64
	closed  bool

	// counter is the per-virtual-address completion counter the paper's
	// completion unit maintains ("incrementing a counter associated with
	// the virtual address", §III-B). It carries over across epochs:
	// counts beyond one threshold belong to the next buffer.
	counter int64

	hwCounter bool // whether this window holds a NIC hardware counter

	// completionWaiters are one-shot futures resolved at the next epoch
	// completion (convenience over raw cell watching).
	completionWaiters []*sim.Future
	// onCompletion, when set, observes every epoch completion (at the
	// completion-pointer write). Unlike NextCompletion it cannot miss
	// back-to-back completions, so middleware that must see all epochs
	// (e.g. keeping a constant number of buffers posted) uses it.
	onCompletion func(*Buffer)

	// pendingSpans are message spans whose final "complete" stage ends at
	// this window's next epoch completion (several messages can share one
	// EpochBytes completion).
	pendingSpans []*metrics.Span

	// maxRewound is the highest epoch ever handed back by Rewind (-1 until
	// the first rewind). Recovery treats a rewound epoch as abandoned, so
	// the completion unit must never complete an epoch at or below it —
	// the "no completion after rewind of the same epoch" safety property
	// (asserted under simdebug in completeHead).
	maxRewound int64

	// Stats.
	MessagesPlaced uint64
	BytesPlaced    uint64
}

// InitWindow creates a window for the mailbox vaddr with the given
// completion threshold and counting mode, and installs it in the NIC
// lookup table. It mirrors the paper's RVMA_Init_window. The threshold
// must be positive; for byte-counted windows the paper recommends making
// it equal to the buffer size with non-overlapping puts (§III-C).
func (ep *Endpoint) InitWindow(vaddr VAddr, threshold int64, etype EpochType) (*Window, error) {
	return ep.InitWindowMode(vaddr, threshold, etype, Steered)
}

// InitWindowMode is InitWindow with an explicit placement mode, exposing
// the paper's Receiver-Managed (stream) variant alongside the default
// Receiver-Steered mode (§IV-B).
func (ep *Endpoint) InitWindowMode(vaddr VAddr, threshold int64, etype EpochType, mode Mode) (*Window, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("%w: threshold %d must be positive", ErrBadArgument, threshold)
	}
	if _, exists := ep.lut[vaddr]; exists {
		return nil, fmt.Errorf("%w: mailbox %#x already has a window", ErrBadArgument, vaddr)
	}
	w := &Window{ep: ep, vaddr: vaddr, threshold: threshold, etype: etype, mode: mode, maxRewound: -1}
	ep.lut[vaddr] = w
	return w, nil
}

// VAddr returns the window's mailbox virtual address.
func (w *Window) VAddr() VAddr { return w.vaddr }

// Threshold returns the window's epoch threshold.
func (w *Window) Threshold() int64 { return w.threshold }

// EpochType returns the window's counting mode.
func (w *Window) EpochType() EpochType { return w.etype }

// Mode returns the window's placement mode.
func (w *Window) Mode() Mode { return w.mode }

// Closed reports whether the window has been closed.
func (w *Window) Closed() bool { return w.closed }

// Epoch returns the window's current epoch: the number of buffers
// completed so far (the paper's RVMA_Win_get_epoch, which system software
// uses to keep a constant number of buffers posted).
func (w *Window) Epoch() int64 { return w.epoch }

// QueueDepth returns the number of posted, not-yet-completed buffers.
func (w *Window) QueueDepth() int { return len(w.queue) }

// PostBuffer allocates a buffer of the given size, attaches it to the
// window's mailbox queue, and returns it; the buffer's NotificationAddr is
// the completion pointer host software watches (the paper's
// RVMA_Post_buffer, which returns notification_ptr). Posting to a closed
// window fails.
func (w *Window) PostBuffer(size int) (*Buffer, error) {
	if w.closed {
		return nil, ErrClosed
	}
	if size <= 0 {
		return nil, fmt.Errorf("%w: buffer size %d", ErrBadArgument, size)
	}
	region := w.ep.Memory().Alloc(size)
	return w.PostBufferRegion(region)
}

// PostBufferRegion attaches an existing memory region as a receive buffer
// (zero-copy into application memory). A fresh completion cell is
// allocated for it.
func (w *Window) PostBufferRegion(region *memory.Region) (*Buffer, error) {
	if w.closed {
		return nil, ErrClosed
	}
	if region == nil || region.Size() == 0 {
		return nil, fmt.Errorf("%w: nil or empty region", ErrBadArgument)
	}
	b := &Buffer{
		Region: region,
		Cell:   memory.NewCompletionCell(w.ep.Memory()),
	}
	wasEmpty := len(w.queue) == 0
	w.queue = append(w.queue, b)
	if wasEmpty {
		w.activateHead()
	}
	return b, nil
}

// activateHead marks queue[0] as serving the current epoch and accounts
// NIC counter occupancy: the first active buffer claims (or fails to
// claim) a hardware counter (§III-B).
func (w *Window) activateHead() {
	w.queue[0].Epoch = w.epoch
	if !w.hwCounter {
		if w.ep.cfg.MaxHWCounters == 0 || w.ep.activeCtrs < w.ep.cfg.MaxHWCounters {
			w.hwCounter = true
			w.ep.activeCtrs++
		}
	}
}

// releaseCounter returns the window's hardware counter to the pool.
func (w *Window) releaseCounter() {
	if w.hwCounter {
		w.hwCounter = false
		w.ep.activeCtrs--
	}
}

// Head returns the active buffer, or nil if none is posted.
func (w *Window) Head() *Buffer {
	if len(w.queue) == 0 {
		return nil
	}
	return w.queue[0]
}

// GetBufPtrs fills ptrs with the notification-pointer addresses of the
// window's posted buffers (active first) and returns how many were
// written, mirroring RVMA_Win_get_buf_ptrs.
func (w *Window) GetBufPtrs(ptrs []memory.Addr) int {
	n := 0
	for _, b := range w.queue {
		if n >= len(ptrs) {
			break
		}
		ptrs[n] = b.NotificationAddr()
		n++
	}
	return n
}

// Close prevents further operations on the window's mailbox. Arriving
// puts are discarded and may trigger a NACK (RVMA_Close_win). Buffers
// still queued are dropped; completed history is retained for Rewind.
func (w *Window) Close() {
	if w.closed {
		return
	}
	w.closed = true
	w.releaseCounter()
	delete(w.ep.lut, w.vaddr)
	w.queue = nil
}

// NextCompletion returns a future that resolves at the next epoch
// completion on this window, with the completed *Buffer as its value. It
// is a host-software convenience over watching the completion cell.
// Completions that occur while no waiter (and no completion handler) is
// registered are not banked; software that must observe every epoch uses
// SetCompletionHandler.
func (w *Window) NextCompletion() *sim.Future {
	f := sim.NewFuture()
	w.completionWaiters = append(w.completionWaiters, f)
	return f
}

// SetCompletionHandler installs fn to observe every epoch completion on
// the window, invoked at the completion-pointer write with the completed
// buffer. Passing nil removes the handler.
func (w *Window) SetCompletionHandler(fn func(*Buffer)) {
	w.onCompletion = fn
}

// IncEpoch hands the active buffer to software before its threshold is
// met (RVMA_Win_inc_epoch): useful for stream semantics, unknown message
// sizes, and error recovery on partial buffers (§III-C). The host issues a
// doorbell to the NIC; the completion unit then completes the buffer with
// its current high-water length. The returned future resolves with the
// completed *Buffer.
func (w *Window) IncEpoch() (*sim.Future, error) {
	if w.closed {
		return nil, ErrClosed
	}
	if len(w.queue) == 0 {
		return nil, ErrNoBuffer
	}
	ep := w.ep
	eng := ep.eng
	// The future resolves with the completed buffer once the completion
	// unit's cell write lands, exactly like a hardware completion.
	f := w.NextCompletion()
	// Host -> NIC doorbell, then the completion unit runs.
	doorbell := ep.nic.Bus().TransferTime(eng.Engine, ep.nic.Profile().DoorbellBytes)
	eng.At(doorbell, func() {
		if w.closed || len(w.queue) == 0 || w.queue[0].completing {
			if !f.Done() {
				f.Complete(eng.Engine, nil)
			}
			return
		}
		ep.Stats.EarlyCompletions++
		ep.mEarly.Add(1)
		if ep.tracer != nil {
			ep.tracer.Eventf(trace.CatRVMA, "node %d win %#x inc_epoch at count %d",
				ep.Node(), w.vaddr, w.counter)
		}
		buf := w.queue[0]
		buf.completing = true
		buf.Count = w.counter
		w.counter = 0 // the next epoch starts a fresh count
		w.completeHead()
	})
	return f, nil
}

// maybeComplete runs the completion check: while the per-address counter
// has accumulated at least one threshold, complete the head buffer,
// carrying excess counts into the next epoch. Counts beyond one threshold
// belong to the next buffer — the per-address counter is how the paper's
// hardware keeps back-to-back messages from losing completions.
//
// A window whose counter lives in host memory (no free NIC counter) pays
// the spill penalty — a host-memory read-modify-write round trip — before
// its completion becomes observable (§III-B); counting order is
// unaffected, only the notification lags.
func (w *Window) maybeComplete() {
	for w.counter >= w.threshold {
		buf := w.Head()
		if buf == nil || buf.completing {
			return
		}
		buf.completing = true
		if w.hwCounter {
			w.counter -= w.threshold
			buf.Count = w.threshold
			w.completeHead()
			continue
		}
		ep := w.ep
		eng := ep.eng
		eng.Schedule(ep.cfg.HostCounterPenalty, func() {
			if w.closed || w.Head() != buf {
				return
			}
			w.counter -= w.threshold
			buf.Count = w.threshold
			w.completeHead()
			w.maybeComplete()
		})
		return
	}
}

// completeHead runs the completion unit on the active buffer at the
// current simulated time: write (head, length) to the completion cell over
// the bus, advance the epoch, retire the buffer to history, and activate
// the next posted buffer (or deactivate the LUT entry's counter if the
// queue drained). It returns the completed buffer. Callers are on the NIC
// clock already (packet DMA completion or doorbell).
func (w *Window) completeHead() *Buffer {
	ep := w.ep
	eng := ep.eng
	buf := w.queue[0]
	if sim.DebugEnabled {
		sim.Assertf(buf.Epoch > w.maxRewound,
			"rvma node %d win %#x completing epoch %d at or below rewound epoch %d",
			ep.Node(), w.vaddr, buf.Epoch, w.maxRewound)
	}
	w.queue = w.queue[1:]
	w.epoch++
	ep.Stats.Completions++
	ep.mCompletions.Add(1)

	// Retire into bounded history for Rewind.
	if ep.cfg.HistoryDepth > 0 {
		w.history = append(w.history, buf)
		if len(w.history) > ep.cfg.HistoryDepth {
			w.history = w.history[1:]
		}
	}

	if len(w.queue) > 0 {
		w.activateHead()
	} else {
		w.releaseCounter()
	}

	// The completion pointer write: one 16-byte PCIe write of (head, len).
	length := buf.HighWater
	if w.mode == Managed {
		length = buf.Fill
	}
	unitAt := eng.Now() // completion unit fires; the pointer write is service
	writeDone := ep.nic.Bus().TransferTime(eng.Engine, 16)
	waiters := w.completionWaiters
	w.completionWaiters = nil
	spans := w.pendingSpans
	w.pendingSpans = nil
	epoch := w.epoch
	eng.At(writeDone, func() {
		buf.completed = true
		buf.CompletedAt = eng.Now()
		buf.Cell.Set(buf.Region.Base, length) // watchers (MWait) fire here
		for _, sp := range spans {
			// The complete stage's service is the completion-pointer write
			// itself; anything before the unit fired (waiting for the
			// epoch's other messages, a counter spill) is wait. Abandoned
			// stragglers still on the pending list ended already — these
			// calls are no-ops for them.
			sp.StageService(eng.Now(), "complete", eng.Now()-unitAt)
			sp.End(eng.Now())
		}
		if ep.tracer != nil {
			ep.tracer.Eventf(trace.CatRVMA, "node %d win %#x epoch %d complete len=%d",
				ep.Node(), w.vaddr, epoch, length)
		}
		for _, f := range waiters {
			if !f.Done() { // a bailed IncEpoch may have resolved its waiter
				f.Complete(eng.Engine, buf)
			}
		}
		if w.onCompletion != nil {
			w.onCompletion(buf)
		}
	})
	return buf
}

// WhenPlaced returns a future that resolves once at least n messages have
// been fully placed into this window since it was created (MessagesPlaced
// >= n), observed by host software polling at the given interval. This is
// the fallback §III-B describes for epochs whose operation count is *not*
// known when buffers are posted: middleware (e.g. an MPI RMA fence that
// learns the op count from control messages) polls and then hands the
// buffer over with IncEpoch. When counts are known a priori, set the
// window threshold instead and no polling happens at all.
func (w *Window) WhenPlaced(n uint64, interval sim.Time) *sim.Future {
	f := sim.NewFuture()
	eng := w.ep.eng
	if w.MessagesPlaced >= n {
		eng.Schedule(w.ep.nic.Profile().HostCompletionOverhead, func() {
			f.Complete(eng.Engine, nil)
		})
		return f
	}
	memory.StartPoller(eng, interval,
		func() bool { return w.MessagesPlaced >= n },
		func() {
			eng.Schedule(w.ep.nic.Profile().HostCompletionOverhead, func() {
				f.Complete(eng.Engine, nil)
			})
		})
	return f
}

// Rewind returns the buffer that completed k epochs ago (k=1 is the most
// recently completed buffer), implementing the paper's hardware fault-
// tolerance: "the address of buffers used in previous communication epochs
// could be retrieved from an RVMA NIC after a failure" (§IV-F). The
// caveat the paper states applies here too: the contents are only the
// epoch-k data if the application has not overwritten them.
func (w *Window) Rewind(k int) (*Buffer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: rewind depth %d", ErrBadArgument, k)
	}
	if k > len(w.history) {
		return nil, fmt.Errorf("%w: only %d epochs retained", ErrNoHistory, len(w.history))
	}
	w.ep.Stats.Rewinds++
	w.ep.mRewinds.Add(1)
	w.ep.reg.Timeline().Counter(w.ep.Node(), "rvma.rewinds",
		w.ep.Engine().Now(), float64(w.ep.Stats.Rewinds))
	if w.ep.tracer != nil {
		w.ep.tracer.Eventf(trace.CatRVMA, "node %d win %#x rewind k=%d",
			w.ep.Node(), w.vaddr, k)
	}
	buf := w.history[len(w.history)-k]
	if buf.Epoch > w.maxRewound {
		w.maxRewound = buf.Epoch
	}
	return buf, nil
}

// HistoryDepth returns how many completed epochs are currently retained.
func (w *Window) HistoryDepth() int { return len(w.history) }
