// Package rvma implements Remote Virtual Memory Access, the paper's
// primary contribution: a NIC architecture and host API in which
//
//   - initiators address *mailboxes* (virtual addresses), never physical
//     remote buffers, so no setup handshake is needed (§III-A, §IV-A);
//   - receivers manage their own resources by posting queues of buffers
//     ("buckets of buffers") to mailboxes (§IV-B);
//   - the NIC counts bytes or operations against a per-window threshold
//     and, when the threshold is reached, writes the completed buffer's
//     head address and length to a cache-line-aligned completion pointer
//     in host memory — the lightweight completion mechanism that works on
//     adaptively routed (unordered) networks (§III-B, §IV-C, §IV-D);
//   - completed buffers are retained per-epoch, enabling the first
//     hardware-level fault-tolerant remote memory access via Rewind
//     (§IV-E, §IV-F).
//
// The package models both the host-side API (the paper's §III-C calls,
// with Go names: InitWindow, PostBuffer, Close, IncEpoch, Epoch,
// GetBufPtrs, Put) and the NIC-side data path (lookup table, DMA
// placement by offset, counter update, completion unit), with all timing
// charged to the shared simulation substrate.
package rvma

import (
	"errors"
	"fmt"

	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/nic"
	"rvma/internal/sim"
	"rvma/internal/trace"
)

// VAddr is an RVMA virtual address: a 64-bit mailbox identifier. It is
// *not* a memory address; the target NIC translates it to the physical
// head of the mailbox's currently active buffer (§III-B).
type VAddr uint64

// EpochType selects how the NIC counts toward a window's completion
// threshold (the paper's epoch_type).
type EpochType int

const (
	// EpochBytes counts payload bytes written into the active buffer.
	EpochBytes EpochType = iota
	// EpochOps counts completed put operations (a multi-packet put counts
	// once, when its last packet has been placed).
	EpochOps
)

// String returns the epoch type's report name.
func (t EpochType) String() string {
	switch t {
	case EpochBytes:
		return "EPOCH_BYTES"
	case EpochOps:
		return "EPOCH_OPS"
	default:
		return fmt.Sprintf("EpochType(%d)", int(t))
	}
}

// Mode selects a window's placement discipline (§IV-B).
type Mode int

const (
	// Steered is the paper's primary mode: every put carries an offset and
	// the NIC places payload at buffer head + offset, independent of
	// arrival order.
	Steered Mode = iota
	// Managed is the sockets-like alternative mode: the NIC appends
	// arriving bytes at the buffer's current fill position, in arrival
	// order (Receiver-Managed RVMA).
	Managed
)

// String returns the mode's report name.
func (m Mode) String() string {
	if m == Managed {
		return "managed"
	}
	return "steered"
}

// Errors returned by the host-side API.
var (
	ErrClosed      = errors.New("rvma: window closed")
	ErrNoWindow    = errors.New("rvma: no window at virtual address")
	ErrNoBuffer    = errors.New("rvma: no buffer posted")
	ErrNoHistory   = errors.New("rvma: requested epoch not in history")
	ErrBadArgument = errors.New("rvma: invalid argument")
)

// NotifyMode selects how host software observes the completion pointer.
type NotifyMode int

const (
	// NotifyMWait arms a Monitor/MWait watcher on the completion cell's
	// cache line and wakes within Profile.MWaitWake of the NIC's write.
	NotifyMWait NotifyMode = iota
	// NotifyPoll re-reads the completion cell every Profile.PollInterval.
	NotifyPoll
)

// String returns the notify mode's report name.
func (m NotifyMode) String() string {
	if m == NotifyPoll {
		return "poll"
	}
	return "mwait"
}

// Config parameterizes an RVMA endpoint (one node's NIC + host library).
type Config struct {
	// MaxHWCounters is the NIC's completion-counter capacity. Windows with
	// posted buffers beyond this spill their counters to host memory,
	// paying HostCounterPenalty per update (§III-B). Zero means unlimited.
	MaxHWCounters int
	// HostCounterPenalty is the extra per-update cost for spilled
	// counters. Zero defaults to one bus round trip (2x PCIe latency) —
	// "200 [ns] today" in the paper's terms; with a Gen 6 bus it shrinks
	// to tens of nanoseconds, as §III-B anticipates.
	HostCounterPenalty sim.Time
	// NACKEnabled makes the NIC reply with a NACK when a put targets a
	// closed or unknown mailbox; the paper permits disabling NACKs to shed
	// DoS load (§III-C).
	NACKEnabled bool
	// HistoryDepth is how many completed buffers each window retains for
	// Rewind. Zero disables fault-tolerance history.
	HistoryDepth int
	// Notification selects MWait or polling observation of completions.
	Notification NotifyMode
	// CarryData, when true, moves real payload bytes through the simulated
	// memory system so tests can verify placement; when false only sizes
	// and timing flow (used at motif scale).
	CarryData bool
}

// DefaultConfig returns the configuration used by most experiments:
// 256 hardware counters (the paper notes parity with RDMA QP counting
// suffices), NACKs on, 4 epochs of history, MWait notification, and real
// data movement.
func DefaultConfig() Config {
	return Config{
		MaxHWCounters: 256,
		NACKEnabled:   true,
		HistoryDepth:  4,
		Notification:  NotifyMWait,
		CarryData:     true,
	}
}

// Stats aggregates endpoint-level counters for reports and tests.
type Stats struct {
	PutsInitiated    uint64
	PutsPlaced       uint64 // messages fully placed at this (target) endpoint
	BytesPlaced      uint64
	Completions      uint64 // buffer epochs completed by the completion unit
	EarlyCompletions uint64 // completions forced by IncEpoch
	Nacks            uint64 // NACKs this endpoint sent
	Drops            uint64 // packets discarded (no window/buffer, overrun)
	CatchAllHits     uint64
	CounterSpills    uint64 // counter updates that paid the host-memory penalty
	GetsServed       uint64
	AcksSent         uint64 // placement acks for reliable (wantAck) puts
	DupPackets       uint64 // retransmit duplicates discarded by the receiver
	Rewinds          uint64 // Rewind calls (epoch recovery events)
}

// Endpoint is one node's RVMA instance: the host library and the NIC
// model, sharing the node's memory and bus.
type Endpoint struct {
	nic *nic.NIC
	eng sim.Tagged // engine handle stamping "rvma" on scheduled events
	cfg Config

	// lut is the NIC lookup table: mailbox virtual address -> window. The
	// paper stresses this is a single-lookup structure with no wildcard
	// support, unlike Portals matching (§III-A); a Go map models exactly
	// that "item found or no item found" semantic.
	lut      map[VAddr]*Window
	catchAll *Window

	asm       *nic.Assembler // op counting for EPOCH_OPS and managed mode
	nextMsgID uint64

	pendingPuts map[uint64]*PutOp       // msgID -> op, for NACK correlation
	pendingGets map[uint64]*GetOp       // getID -> op
	pendingRel  map[uint64]*ReliablePut // msgID -> reliable put awaiting ack
	relAsm      *nic.RangeAssembler     // duplicate-aware reassembly of wantAck puts
	getAsm      *nic.Assembler          // reassembly of get replies
	getBuf      map[uint64][]byte       // partial get reply data (CarryData mode)
	activeCtrs  int                     // windows currently holding a HW counter

	tracer *trace.Tracer
	reg    *metrics.Registry // for span lookup; nil when metrics detached

	// Metric handles (nil when no registry is attached).
	mNacks       *metrics.Counter
	mDrops       *metrics.Counter
	mBufExhaust  *metrics.Counter // rejects caused by no posted buffer
	mCompletions *metrics.Counter
	mEarly       *metrics.Counter
	mSpills      *metrics.Counter
	mRewinds     *metrics.Counter

	Stats Stats

	// dbg holds simdebug conservation accounting; updated and checked
	// only when sim.DebugEnabled (see debug.go).
	dbg debugAccounting
}

// NewEndpoint attaches an RVMA endpoint to the given NIC. The NIC must not
// already have a protocol handler.
func NewEndpoint(n *nic.NIC, cfg Config) *Endpoint {
	if cfg.HostCounterPenalty == 0 {
		cfg.HostCounterPenalty = 2 * n.Bus().Latency()
	}
	ep := &Endpoint{
		nic:         n,
		eng:         n.Engine().Tag("rvma"),
		cfg:         cfg,
		lut:         make(map[VAddr]*Window),
		asm:         nic.NewAssembler(),
		pendingPuts: make(map[uint64]*PutOp),
		pendingGets: make(map[uint64]*GetOp),
		pendingRel:  make(map[uint64]*ReliablePut),
		relAsm:      nic.NewRangeAssembler(),
		getAsm:      nic.NewAssembler(),
		getBuf:      make(map[uint64][]byte),
	}
	n.SetHandler(ep.handlePacket)
	return ep
}

// SetTracer attaches a tracer; window lifecycle, completions and NACKs go
// to trace.CatRVMA. A nil tracer detaches.
func (ep *Endpoint) SetTracer(t *trace.Tracer) { ep.tracer = t }

// SetMetrics attaches a metrics registry: protocol counters update per
// event, mailbox depth and LUT occupancy are sampled by a collector, and
// (when the registry has spans enabled) each put is tracked through
// host_post -> nic_tx -> wire -> place -> complete stages. Counter handles
// are shared across every endpoint on the registry; the collector gauges
// are per node. A nil registry detaches everything.
func (ep *Endpoint) SetMetrics(reg *metrics.Registry) {
	ep.reg = reg
	if reg == nil {
		ep.mNacks, ep.mDrops, ep.mBufExhaust = nil, nil, nil
		ep.mCompletions, ep.mEarly, ep.mSpills, ep.mRewinds = nil, nil, nil, nil
		return
	}
	ep.mNacks = reg.Counter("rvma.nacks")
	ep.mDrops = reg.Counter("rvma.drops")
	ep.mBufExhaust = reg.Counter("rvma.posted_buffer_exhaustion")
	ep.mCompletions = reg.Counter("rvma.epoch_completions")
	ep.mEarly = reg.Counter("rvma.early_completions")
	ep.mSpills = reg.Counter("rvma.counter_spills")
	ep.mRewinds = reg.Counter("rvma.rewinds")
	node := ep.Node()
	reg.AddCollector(func() {
		depth := 0
		for _, w := range ep.lut {
			depth += len(w.queue)
		}
		reg.Gauge(fmt.Sprintf("rvma%d.mailbox_depth", node)).Set(float64(depth))
		reg.Gauge(fmt.Sprintf("rvma%d.lut_size", node)).Set(float64(len(ep.lut)))
		reg.Gauge(fmt.Sprintf("rvma%d.hw_counters", node)).Set(float64(ep.activeCtrs))
		reg.Gauge(fmt.Sprintf("rvma%d.pending_asm", node)).Set(float64(ep.asm.Pending()))
	})
}

// Node returns the endpoint's node id.
func (ep *Endpoint) Node() int { return ep.nic.Node() }

// NIC returns the underlying NIC model.
func (ep *Endpoint) NIC() *nic.NIC { return ep.nic }

// Memory returns the node's host memory.
func (ep *Endpoint) Memory() *memory.Memory { return ep.nic.Memory() }

// Engine returns the simulation engine.
func (ep *Endpoint) Engine() *sim.Engine { return ep.nic.Engine() }

// Config returns the endpoint configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// LUTSize returns the number of mailboxes currently in the lookup table
// (diagnostics; the paper sizes LUT entries at 24 bytes each, §IV-A).
func (ep *Endpoint) LUTSize() int { return len(ep.lut) }

// PostedBuffers returns the total posted-buffer occupancy across every
// mailbox on this endpoint (telemetry probe; the sum is order-independent
// over the LUT).
func (ep *Endpoint) PostedBuffers() int {
	depth := 0
	for _, w := range ep.lut {
		depth += len(w.queue)
	}
	return depth
}

// CounterProgress returns the sum of the in-progress epoch counters across
// every mailbox: how far the completion unit has counted toward the next
// threshold crossings (telemetry probe).
func (ep *Endpoint) CounterProgress() int64 {
	var total int64
	for _, w := range ep.lut {
		total += w.counter
	}
	return total
}

// EpochTotal returns the sum of completed epochs across every mailbox.
func (ep *Endpoint) EpochTotal() int64 {
	var total int64
	for _, w := range ep.lut {
		total += w.epoch
	}
	return total
}

// ActiveHWCounters returns how many windows currently hold one of the
// NIC's hardware completion counters.
func (ep *Endpoint) ActiveHWCounters() int { return ep.activeCtrs }

// SetCatchAll designates win as the endpoint's catch-all mailbox: puts
// addressed to unknown or closed mailboxes are steered into it instead of
// being dropped (§III-C mentions catch-all mailboxes as part of a full
// RVMA specification).
func (ep *Endpoint) SetCatchAll(win *Window) {
	ep.catchAll = win
}

// wire opcodes.
type opcode int

const (
	opPut opcode = iota
	opNack
	opGetReq
	opGetReply
	// opAck acknowledges full placement of a reliable (wantAck) put. Plain
	// RVMA puts stay unacknowledged — the ack exists only for senders that
	// opted into the recovery layer's timeout/retransmit loop.
	opAck
)

// command is the protocol payload carried in fabric packets.
type command struct {
	op        opcode
	msgID     uint64
	vaddr     VAddr
	msgOffset int    // user offset of the whole message within the buffer
	pktOffset int    // offset of this packet's payload within the message
	total     int    // total message payload bytes
	data      []byte // this packet's payload bytes (nil when !CarryData)
	wantAck   bool   // reliable put: target acks full placement (opAck)

	// get fields
	length int
	status error // NACK reason
}
