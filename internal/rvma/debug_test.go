//go:build simdebug

package rvma

import (
	"strings"
	"testing"
)

// debugEndpoint builds a minimal endpoint for invariant tests (no
// fabric traffic needed; the checks read local state).
func debugEndpoint(t *testing.T) *Endpoint {
	t.Helper()
	_, ep, _ := defaultPair(t)
	return ep
}

func expectInvariantPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic = %v, want simdebug message containing %q", r, substr)
		}
	}()
	fn()
}

func TestDebugCatchesByteLeak(t *testing.T) {
	ep := debugEndpoint(t)
	// Bytes that arrived but were neither placed nor dropped: the
	// conservation check must fail.
	ep.dbg.putBytesArrived = 100
	ep.dbg.putBytesPlaced = 40
	ep.dbg.putBytesDropped = 10
	expectInvariantPanic(t, "put-byte conservation", func() { ep.debugCheckEndpoint() })
}

func TestDebugCatchesPhantomNack(t *testing.T) {
	ep := debugEndpoint(t)
	ep.Stats.Nacks = 2
	ep.Stats.Drops = 1
	expectInvariantPanic(t, "NACKs", func() { ep.debugCheckEndpoint() })
}

func TestDebugCatchesCounterUnderflow(t *testing.T) {
	ep := debugEndpoint(t)
	w, err := ep.InitWindow(0x1000, 64, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	w.counter = -1
	expectInvariantPanic(t, "counter went negative", func() { ep.debugCheckEndpoint() })
}

func TestDebugCatchesHighWaterOverrun(t *testing.T) {
	ep := debugEndpoint(t)
	w, err := ep.InitWindow(0x1000, 64, EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := w.PostBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	buf.HighWater = 65
	expectInvariantPanic(t, "high-water", func() { ep.debugCheckEndpoint() })
}

func TestDebugCleanEndpointPasses(t *testing.T) {
	ep := debugEndpoint(t)
	if _, err := ep.InitWindow(0x1000, 64, EpochBytes); err != nil {
		t.Fatal(err)
	}
	ep.debugCheckEndpoint() // must not panic
}
