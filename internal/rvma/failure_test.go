package rvma

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/sim"
)

// Failure-injection tests: the paper's fault-tolerance story (§IV-F)
// rests on a safety property of threshold counting — a buffer with holes
// is never announced complete, so the application can always distinguish
// "epoch done" from "epoch lost" and recover via Rewind/IncEpoch.

func TestDropsNeverFalselyComplete(t *testing.T) {
	// Under packet loss, an RVMA byte-threshold window completes exactly
	// the messages whose every packet arrived; holed buffers stay open.
	for seed := uint64(1); seed <= 8; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.DropRate = 0.05
		eng, src, dst := pair(t, DefaultConfig(), fcfg, seed)
		const msgSize = 16 * 1024 // 8 packets
		const nMsgs = 40
		win, _ := dst.InitWindow(1, msgSize, EpochBytes)
		for i := 0; i < nMsgs; i++ {
			win.PostBuffer(msgSize)
		}
		eng.Schedule(0, func() {
			for i := 0; i < nMsgs; i++ {
				src.PutN(1, 1, 0, msgSize)
			}
		})
		eng.Run()
		dropped := dst.NIC().Network().Stats.PacketsDropped
		if dropped == 0 {
			t.Fatalf("seed %d: failure injection produced no drops", seed)
		}
		// Completions + fully-placed-message accounting must be exact:
		// every completed epoch consumed msgSize bytes, every dropped
		// packet's bytes are missing, and the counter never invents bytes.
		// The per-packet loss is one MTU of payload — derived from the
		// fabric config (not hardcoded) and cross-checked against the
		// fabric's own byte accounting, so an MTU change can't silently
		// invalidate the arithmetic this safety property rests on.
		if msgSize%fcfg.MTU != 0 {
			t.Fatalf("msgSize %d not a multiple of MTU %d; drop arithmetic needs full packets", msgSize, fcfg.MTU)
		}
		bytesDropped := int64(dropped) * int64(fcfg.MTU)
		if got := dst.NIC().Network().Stats.BytesDropped; int64(got) != bytesDropped {
			t.Fatalf("seed %d: fabric dropped %d bytes, MTU arithmetic says %d", seed, got, bytesDropped)
		}
		bytesArrived := int64(nMsgs*msgSize) - bytesDropped
		accounted := win.Epoch()*msgSize + win.counter
		if accounted != bytesArrived {
			t.Fatalf("seed %d: counter accounting %d != arrived bytes %d", seed, accounted, bytesArrived)
		}
		if win.Epoch() >= nMsgs {
			t.Fatalf("seed %d: all epochs completed despite %d drops", seed, dropped)
		}
	}
}

func TestIncEpochRecoversHoledBuffer(t *testing.T) {
	// The §III-C recovery path: after a detected loss (timeout), the
	// target hands the partial buffer to software with IncEpoch and learns
	// how many bytes are usable from the completion length. The loss
	// pattern is seed-dependent, so scan seeds until one loses the tail of
	// the message — that is the case where the reported high-water length
	// is a strict partial count.
	const msgSize = 32 * 1024
	sawTailLoss := false
	for seed := uint64(1); seed <= 16 && !sawTailLoss; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.DropRate = 0.2
		eng, src, dst := pair(t, DefaultConfig(), fcfg, seed)
		win, _ := dst.InitWindow(2, msgSize, EpochBytes)
		buf, _ := win.PostBuffer(msgSize)
		var gotLen int
		recovered := false
		eng.Schedule(0, func() { src.PutN(1, 2, 0, msgSize) })
		eng.Schedule(sim.Millisecond, func() {
			if win.Epoch() != 0 {
				return // no loss this seed; nothing to recover
			}
			f, err := win.IncEpoch()
			if err != nil {
				t.Errorf("seed %d: IncEpoch: %v", seed, err)
				return
			}
			recovered = true
			f.OnComplete(func() {
				_, gotLen = buf.Cell.Get()
			})
		})
		eng.Run()
		if !recovered {
			continue // message survived the loss injection intact
		}
		if drops := dst.NIC().Network().Stats.PacketsDropped; drops == 0 {
			t.Fatalf("seed %d: holed buffer without any fabric drops", seed)
		}
		if win.Epoch() != 1 {
			t.Fatalf("seed %d: epoch = %d after recovery", seed, win.Epoch())
		}
		if gotLen <= 0 || gotLen > msgSize {
			t.Fatalf("seed %d: recovered length = %d, want in (0, %d]", seed, gotLen, msgSize)
		}
		// gotLen == msgSize means a mid-message hole (high-water reached the
		// end); keep scanning for a tail loss to certify a strict partial.
		sawTailLoss = gotLen < msgSize
	}
	if !sawTailLoss {
		t.Fatal("no seed in 1..16 produced a tail loss; widen the scan")
	}
}

func TestEpochOpsSafeUnderDrops(t *testing.T) {
	// Op counting is hole-proof too: an op is counted only when the
	// assembler saw every byte of the message.
	fcfg := fabric.DefaultConfig()
	fcfg.DropRate = 0.1
	eng, src, dst := pair(t, DefaultConfig(), fcfg, 7)
	const nMsgs = 30
	win, _ := dst.InitWindow(3, 1, EpochOps)
	for i := 0; i < nMsgs; i++ {
		win.PostBuffer(8192)
	}
	eng.Schedule(0, func() {
		for i := 0; i < nMsgs; i++ {
			src.PutN(1, 3, 0, 8192) // 4 packets each
		}
	})
	eng.Run()
	drops := dst.NIC().Network().Stats.PacketsDropped
	if drops == 0 {
		t.Fatal("no drops injected")
	}
	// Completed epochs == fully placed messages, strictly fewer than sent.
	if win.Epoch() != int64(dst.Stats.PutsPlaced) {
		t.Fatalf("epochs %d != placed messages %d", win.Epoch(), dst.Stats.PutsPlaced)
	}
	if win.Epoch() >= nMsgs {
		t.Fatalf("epochs %d should be < %d with %d drops", win.Epoch(), nMsgs, drops)
	}
}
