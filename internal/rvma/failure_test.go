package rvma

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/sim"
)

// Failure-injection tests: the paper's fault-tolerance story (§IV-F)
// rests on a safety property of threshold counting — a buffer with holes
// is never announced complete, so the application can always distinguish
// "epoch done" from "epoch lost" and recover via Rewind/IncEpoch.

func TestDropsNeverFalselyComplete(t *testing.T) {
	// Under packet loss, an RVMA byte-threshold window completes exactly
	// the messages whose every packet arrived; holed buffers stay open.
	for seed := uint64(1); seed <= 8; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.DropRate = 0.05
		eng, src, dst := pair(t, DefaultConfig(), fcfg, seed)
		const msgSize = 16 * 1024 // 8 packets
		const nMsgs = 40
		win, _ := dst.InitWindow(1, msgSize, EpochBytes)
		for i := 0; i < nMsgs; i++ {
			win.PostBuffer(msgSize)
		}
		eng.Schedule(0, func() {
			for i := 0; i < nMsgs; i++ {
				src.PutN(1, 1, 0, msgSize)
			}
		})
		eng.Run()
		dropped := dst.NIC().Network().Stats.PacketsDropped
		if dropped == 0 {
			t.Fatalf("seed %d: failure injection produced no drops", seed)
		}
		// Completions + fully-placed-message accounting must be exact:
		// every completed epoch consumed msgSize bytes, every dropped
		// packet's bytes are missing, and the counter never invents bytes.
		bytesArrived := int64(nMsgs*msgSize) - int64(dropped)*2048
		accounted := win.Epoch()*msgSize + win.counter
		if accounted != bytesArrived {
			t.Fatalf("seed %d: counter accounting %d != arrived bytes %d", seed, accounted, bytesArrived)
		}
		if win.Epoch() >= nMsgs {
			t.Fatalf("seed %d: all epochs completed despite %d drops", seed, dropped)
		}
	}
}

func TestIncEpochRecoversHoledBuffer(t *testing.T) {
	// The §III-C recovery path: after a detected loss (timeout), the
	// target hands the partial buffer to software with IncEpoch and learns
	// exactly how many bytes are usable from the completion length.
	fcfg := fabric.DefaultConfig()
	fcfg.DropRate = 0.2
	eng, src, dst := pair(t, DefaultConfig(), fcfg, 3)
	const msgSize = 32 * 1024
	win, _ := dst.InitWindow(2, msgSize, EpochBytes)
	buf, _ := win.PostBuffer(msgSize)
	var gotLen int
	eng.Schedule(0, func() { src.PutN(1, 2, 0, msgSize) })
	eng.Schedule(sim.Millisecond, func() {
		if win.Epoch() != 0 {
			return // no loss this seed; nothing to recover
		}
		f, err := win.IncEpoch()
		if err != nil {
			t.Errorf("IncEpoch: %v", err)
			return
		}
		f.OnComplete(func() {
			_, gotLen = buf.Cell.Get()
		})
	})
	eng.Run()
	drops := dst.NIC().Network().Stats.PacketsDropped
	if drops == 0 {
		t.Skip("seed produced no drops")
	}
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d after recovery", win.Epoch())
	}
	if gotLen <= 0 || gotLen >= msgSize {
		t.Fatalf("recovered partial length = %d, want in (0, %d)", gotLen, msgSize)
	}
}

func TestEpochOpsSafeUnderDrops(t *testing.T) {
	// Op counting is hole-proof too: an op is counted only when the
	// assembler saw every byte of the message.
	fcfg := fabric.DefaultConfig()
	fcfg.DropRate = 0.1
	eng, src, dst := pair(t, DefaultConfig(), fcfg, 7)
	const nMsgs = 30
	win, _ := dst.InitWindow(3, 1, EpochOps)
	for i := 0; i < nMsgs; i++ {
		win.PostBuffer(8192)
	}
	eng.Schedule(0, func() {
		for i := 0; i < nMsgs; i++ {
			src.PutN(1, 3, 0, 8192) // 4 packets each
		}
	})
	eng.Run()
	drops := dst.NIC().Network().Stats.PacketsDropped
	if drops == 0 {
		t.Fatal("no drops injected")
	}
	// Completed epochs == fully placed messages, strictly fewer than sent.
	if win.Epoch() != int64(dst.Stats.PutsPlaced) {
		t.Fatalf("epochs %d != placed messages %d", win.Epoch(), dst.Stats.PutsPlaced)
	}
	if win.Epoch() >= nMsgs {
		t.Fatalf("epochs %d should be < %d with %d drops", win.Epoch(), nMsgs, drops)
	}
}
