#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

Run with:

    python3 scripts/check_bench_regression_test.py

The tests drive main() end to end on temporary log pairs: identical
logs, a current run with brand-new cells (the case that used to fail
with "no cells shared" when a new experiment family landed), a real
throughput regression, and a determinism violation.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression", os.path.join(_HERE, "check_bench_regression.py"))
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def record(cell, eps, events=1000, shards=0):
    rec = {"cell": cell, "events_per_sec": eps, "events": events}
    if shards:
        rec["shards"] = shards
    return rec


def log(records, workers=1, shards=0):
    agg = sum(r["events_per_sec"] for r in records) / max(len(records), 1)
    summary = {"events_per_sec_aggregate": agg, "workers": workers}
    if shards:
        summary["shards"] = shards
    return {"records": records, "summary": summary}


class CheckBenchRegressionTest(unittest.TestCase):
    def run_main(self, base, cur, env=None):
        """Write both logs, run main(), return (exit_code, stdout)."""
        with tempfile.TemporaryDirectory() as td:
            bp = os.path.join(td, "base.json")
            cp = os.path.join(td, "cur.json")
            with open(bp, "w") as f:
                json.dump(base, f)
            with open(cp, "w") as f:
                json.dump(cur, f)
            saved = dict(os.environ)
            os.environ.pop("GITHUB_STEP_SUMMARY", None)
            os.environ.pop("BENCH_REGRESSION_THRESHOLD", None)
            os.environ.update(env or {})
            out = io.StringIO()
            try:
                with contextlib.redirect_stdout(out):
                    code = cbr.main(["check", bp, cp])
            finally:
                os.environ.clear()
                os.environ.update(saved)
            return code, out.getvalue()

    def test_identical_logs_pass(self):
        base = log([record("sweep3d|rvma", 1e6), record("sweep3d|rdma", 9e5)])
        code, out = self.run_main(base, base)
        self.assertEqual(code, 0, out)
        self.assertIn("OK: 2 cells", out)

    def test_new_cells_reported_not_failed(self):
        base = log([record("sweep3d|rvma", 1e6)])
        cur = log([record("sweep3d|rvma", 1e6),
                   record("kv|rvma|skew0.99", 8e5),
                   record("kv|rdma|skew0.99", 7e5)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("new, no baseline", out)
        self.assertIn("2 new, no baseline", out)
        self.assertNotIn("FAIL", out)

    def test_all_new_cells_pass(self):
        # A brand-new experiment family compared against an unrelated
        # baseline: every current cell is new. This used to fail with
        # "no cells shared".
        base = log([record("sweep3d|rvma", 1e6)])
        cur = log([record("kv|rvma|skew0.99", 8e5)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("new, no baseline", out)
        self.assertNotIn("no cells shared", out)

    def test_absent_cells_annotated(self):
        base = log([record("sweep3d|rvma", 1e6), record("halo3d|rvma", 5e5)])
        cur = log([record("sweep3d|rvma", 1e6)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("absent from current", out)

    def test_empty_current_fails(self):
        base = log([record("sweep3d|rvma", 1e6)])
        code, out = self.run_main(base, {"records": [], "summary": {}})
        self.assertEqual(code, 1, out)
        self.assertIn("no cells shared", out)

    def test_regression_still_fails(self):
        base = log([record("sweep3d|rvma", 1e6)])
        cur = log([record("sweep3d|rvma", 5e5)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)

    def test_regression_fails_even_with_new_cells(self):
        # New cells must not mask a regression in the shared ones.
        base = log([record("sweep3d|rvma", 1e6)])
        cur = log([record("sweep3d|rvma", 5e5),
                   record("kv|rvma|skew0.99", 9e5)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL", out)

    def test_event_count_change_fails(self):
        base = log([record("sweep3d|rvma", 1e6, events=1000)])
        cur = log([record("sweep3d|rvma", 1e6, events=1001)])
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 1, out)
        self.assertIn("determinism violation", out)

    def test_shard_count_mismatch_skipped(self):
        base = log([record("sweep3d|rvma", 1e6, shards=0)])
        cur = log([record("sweep3d|rvma", 4e6, events=900, shards=4)],
                  shards=4)
        code, out = self.run_main(base, cur)
        self.assertEqual(code, 0, out)
        self.assertIn("skipped: shard counts differ", out)

    def test_threshold_env_override(self):
        base = log([record("sweep3d|rvma", 1e6)])
        cur = log([record("sweep3d|rvma", 7.5e5)])
        code, out = self.run_main(base, cur,
                                  env={"BENCH_REGRESSION_THRESHOLD": "0.5"})
        self.assertEqual(code, 0, out)


if __name__ == "__main__":
    unittest.main()
