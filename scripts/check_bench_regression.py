#!/usr/bin/env python3
"""Fail when simulator event throughput regresses against the baseline.

Usage:

    scripts/check_bench_regression.py BENCH_baseline.json BENCH_sim.json

Both files are rvmabench -json-out output: {"records": [...], "summary":
{...}} (see EXPERIMENTS.md, "Simulator performance log"). The guard
compares events/sec — the wall-clock-normalized kernel speed — in two
ways:

  * the aggregate (summary.events_per_sec_aggregate, computed over the
    sum of per-cell wall times, so it is independent of -workers), and
  * each cell present in both files, so a regression confined to one
    transport or topology cannot hide inside a healthy average.

Baseline and current run must use the same -workers setting (CI pins
-workers 1): when workers oversubscribe the host's cores, concurrent
cells time-share and per-cell wall time inflates, which would read as a
phantom regression.

A drop of more than the threshold (default 20%, override with
BENCH_REGRESSION_THRESHOLD, e.g. 0.3) in the aggregate, or in more than
a quarter of the shared cells, fails with exit status 1. Per-cell noise
is expected — single cells regressing is reported but tolerated up to
that quorum. Event *counts* changing for a shared cell is a determinism
red flag and always fails: the same simulation must execute the same
events no matter how fast the host is.

Sharded runs (rvmabench -shards N) record a "shards" field per cell and
in the summary; baselines that predate the sharded engine carry none
(treated as shards=0, the single-heap path). events/sec is only
apples-to-apples between runs at the same shard count, so cells whose
shard counts differ are reported in the table (annotated) but exempt
from the throughput regression checks. The event-count equality check
applies whenever both runs are sharded (any counts >= 1: byte-identical
output at every partition is the sharded engine's contract) or both are
single-heap; it is skipped only between a shards=0 run and a sharded
one, because the legacy path attaches span instrumentation that itself
schedules model events, so its counts are legitimately different.

Cells present in only one log are not errors: a cell in the current run
with no baseline counterpart (a newly added experiment family, e.g. the
kv dataplane) is reported as "new, no baseline" and exempt from every
check, and a baseline cell missing from the current run is reported as
"absent from current". Only a pair of logs with no shared cells *and* no
new cells fails — that means the current log is empty or the files are
unrelated. When no cells are shared at all, the aggregate events/sec
compares different workloads, so it is printed but not regression-checked.

The full per-cell delta table (events/sec baseline vs current, delta %)
always prints to stdout; when $GITHUB_STEP_SUMMARY is set it is also
appended there as a markdown table, so every CI run shows the per-cell
trajectory, not just pass/fail.
"""

import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    records = {r["cell"]: r for r in doc.get("records", [])}
    return doc.get("summary", {}), records


def shards_of(rec):
    """Engine partition count of a record; 0 (single heap) when absent."""
    return rec.get("shards", 0)


def delta_rows(shared, base_cells, cur_cells, new_cells=(), gone_cells=()):
    """One (cell, base_eps, cur_eps, delta_or_None, note) row per cell.
    Shared cells run at different shard counts get a note and delta=None
    (their events/sec are not comparable), as do cells present in only
    one log: current-only cells are "new, no baseline", baseline-only
    cells are "absent from current"."""
    rows = []
    for cell in shared:
        b, c = base_cells[cell], cur_cells[cell]
        b_eps = b.get("events_per_sec", 0.0)
        c_eps = c.get("events_per_sec", 0.0)
        if shards_of(b) != shards_of(c):
            note = f"shards {shards_of(b)}->{shards_of(c)}"
            rows.append((cell, b_eps, c_eps, None, note))
            continue
        delta = (c_eps - b_eps) / b_eps if b_eps > 0 and c_eps > 0 else None
        rows.append((cell, b_eps, c_eps, delta, ""))
    for cell in new_cells:
        c_eps = cur_cells[cell].get("events_per_sec", 0.0)
        rows.append((cell, 0.0, c_eps, None, "new, no baseline"))
    for cell in gone_cells:
        b_eps = base_cells[cell].get("events_per_sec", 0.0)
        rows.append((cell, b_eps, 0.0, None, "absent from current"))
    return rows


def print_delta_table(rows):
    if not rows:
        return
    width = max(len(r[0]) for r in rows)
    print(f"\n{'cell':<{width}}  {'baseline ev/s':>14}  {'current ev/s':>14}  {'delta':>8}")
    for cell, b_eps, c_eps, delta, note in rows:
        d = f"{delta:+.1%}" if delta is not None else (note or "n/a")
        print(f"{cell:<{width}}  {b_eps:>14,.0f}  {c_eps:>14,.0f}  {d:>8}")
    print()


def append_step_summary(rows, base_agg, cur_agg):
    """Append the delta table as markdown to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not rows:
        return
    lines = ["### Per-cell events/sec vs baseline", "",
             "| cell | baseline ev/s | current ev/s | delta |",
             "| --- | ---: | ---: | ---: |"]
    for cell, b_eps, c_eps, delta, note in rows:
        d = f"{delta:+.1%}" if delta is not None else (note or "n/a")
        lines.append(f"| `{cell}` | {b_eps:,.0f} | {c_eps:,.0f} | {d} |")
    if base_agg > 0 and cur_agg > 0:
        agg_delta = (cur_agg - base_agg) / base_agg
        lines += ["", f"**Aggregate:** {base_agg:,.0f} → {cur_agg:,.0f} "
                      f"({agg_delta:+.1%})"]
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} BASELINE.json CURRENT.json")
    threshold = float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.20"))

    base_summary, base_cells = load(argv[1])
    cur_summary, cur_cells = load(argv[2])

    failures = []

    shared = sorted(set(base_cells) & set(cur_cells))
    new_cells = sorted(set(cur_cells) - set(base_cells))
    gone_cells = sorted(set(base_cells) - set(cur_cells))

    base_agg = base_summary.get("events_per_sec_aggregate", 0.0)
    cur_agg = cur_summary.get("events_per_sec_aggregate", 0.0)
    base_shards = base_summary.get("shards", 0)
    cur_shards = cur_summary.get("shards", 0)
    if base_agg > 0 and cur_agg > 0:
        drop = (base_agg - cur_agg) / base_agg
        print(f"aggregate events/sec: baseline {base_agg:,.0f} -> current "
              f"{cur_agg:,.0f} ({-drop:+.1%})")
        if base_shards != cur_shards:
            print(f"note: shard counts differ (baseline {base_shards}, "
                  f"current {cur_shards}); aggregate throughput not "
                  f"regression-checked")
        elif not shared:
            print("note: no shared cells (different workloads); aggregate "
                  "throughput not regression-checked")
        elif drop > threshold:
            failures.append(
                f"aggregate events/sec dropped {drop:.1%} "
                f"(threshold {threshold:.0%})")
    else:
        failures.append("missing events_per_sec_aggregate in summary")

    if not shared and not new_cells:
        failures.append("no cells shared between baseline and current run")
    elif new_cells:
        print(f"note: {len(new_cells)} cell(s) new in current run, "
              f"no baseline to compare")
    rows = delta_rows(shared, base_cells, cur_cells, new_cells, gone_cells)
    print_delta_table(rows)
    append_step_summary(rows, base_agg, cur_agg)
    regressed = []
    comparable = 0
    for cell in shared:
        b, c = base_cells[cell], cur_cells[cell]
        # Event counts must match between any two sharded runs (the
        # byte-identical contract) and between two single-heap runs; only
        # the shards=0 <-> sharded pairing is exempt (the legacy path's
        # span instrumentation schedules extra model events).
        same_mode = (shards_of(b) > 0) == (shards_of(c) > 0)
        if same_mode and b.get("events") != c.get("events"):
            failures.append(
                f"{cell}: event count changed {b.get('events')} -> "
                f"{c.get('events')} (determinism violation, not a perf issue)")
        if shards_of(b) != shards_of(c):
            continue  # throughput not comparable across shard counts
        comparable += 1
        b_eps, c_eps = b.get("events_per_sec", 0.0), c.get("events_per_sec", 0.0)
        if b_eps > 0 and c_eps > 0:
            drop = (b_eps - c_eps) / b_eps
            if drop > threshold:
                regressed.append((cell, drop))
    for cell, drop in regressed:
        print(f"slow cell: {cell} events/sec down {drop:.1%}")
    if comparable and len(regressed) > comparable // 4:
        failures.append(
            f"{len(regressed)}/{comparable} cells regressed more than "
            f"{threshold:.0%} (quorum is {comparable // 4})")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    notes = []
    if skipped := len(shared) - comparable:
        notes.append(f"{skipped} skipped: shard counts differ")
    if new_cells:
        notes.append(f"{len(new_cells)} new, no baseline")
    note = f" ({'; '.join(notes)})" if notes else ""
    print(f"OK: {comparable} cells within {threshold:.0%} of baseline{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
