#!/usr/bin/env python3
"""Audit //rvmalint:allow directives.

Every suppression in the tree must carry a human-readable justification
after " -- " and may only name analyzers that actually exist, so a
directive can never silently rot into suppressing nothing (typo) or
suppressing without a recorded reason. Run from the repository root:

    python3 scripts/check_allow_directives.py

Exit status is 1 if any directive is malformed, with one line per
offence in file:line: form.
"""

import os
import re
import sys

# The analyzer set registered in internal/lint.All(). Keep in sync when
# adding an analyzer (the test fixtures exercise each name, so a stale
# list here fails CI on the fixture directives).
KNOWN_ANALYZERS = {
    "wallclock",
    "maprange",
    "simtime",
    "goroutine",
    "detaint",
    "spanleak",
    "hotalloc",
    "psunits",
}

# Matches the directive and captures the name list and the remainder of
# the comment. Mirrors allowDirective in internal/lint/lint.go, which
# anchors at the start of the comment text.
DIRECTIVE = re.compile(r"//rvmalint:allow\s+([A-Za-z0-9_,]+)(.*)$")

SKIP_DIRS = {".git", "figures", "results"}


def audit_file(path):
    errors = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = DIRECTIVE.search(line)
            if m is None:
                continue
            # A quote before the match means the directive sits inside a
            # string literal or a quoted doc example, not a suppression.
            if '"' in line[: m.start()]:
                continue
            names, rest = m.group(1), m.group(2)
            where = f"{path}:{lineno}"
            for name in names.split(","):
                if not name:
                    errors.append(f"{where}: empty analyzer name in directive")
                elif name not in KNOWN_ANALYZERS:
                    errors.append(
                        f"{where}: unknown analyzer {name!r} "
                        f"(known: {', '.join(sorted(KNOWN_ANALYZERS))})"
                    )
            justification = rest.split(" -- ", 1)
            if len(justification) < 2 or not justification[1].strip():
                errors.append(
                    f"{where}: directive has no justification; append "
                    f"' -- <why this suppression is sound>'"
                )
    return errors


def main():
    errors = []
    count = 0
    for root, dirs, files in os.walk("."):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if not name.endswith(".go"):
                continue
            path = os.path.join(root, name)
            file_errors = audit_file(path)
            errors.extend(file_errors)
            with open(path, encoding="utf-8") as f:
                count += sum("//rvmalint:allow" in l for l in f)
    for e in errors:
        print(e)
    if errors:
        print(f"check_allow_directives: {len(errors)} malformed directive(s)")
        return 1
    print(f"ok: {count} allow directive(s), all named and justified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
