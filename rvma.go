// Package rvma is a library-scale reproduction of "RVMA: Remote Virtual
// Memory Access" (Grant, Levenhagen, Dosanjh, Widener — Sandia National
// Laboratories, IPDPS 2021): the RVMA NIC architecture, a traditional
// RDMA baseline, and the discrete-event network substrate both run on,
// with an experiment harness that regenerates every figure in the paper's
// evaluation.
//
// This root package is the public facade. It re-exports the RVMA host API
// (the paper's §III-C calls) and provides Testbed, a convenience builder
// that wires a simulated network of RVMA endpoints:
//
//	tb, _ := rvma.NewTestbed(2, rvma.TestbedConfig{})
//	win, _ := tb.Endpoints[1].InitWindow(0x11FF0011, 1024, rvma.EpochBytes)
//	buf, _ := win.PostBuffer(1024)
//	tb.Engine.Spawn("sender", func(p *sim.Process) {
//	    op := tb.Endpoints[0].Put(1, 0x11FF0011, 0, payload)
//	    p.Wait(op.Local)
//	})
//	tb.Engine.Run()
//
// The implementation packages live under internal/: sim (event kernel),
// memory, pcie, topology, fabric, nic (shared substrate), rvma (the
// contribution), rdma (baseline), hostif/microbench/motif/harness
// (experiments). See DESIGN.md for the full inventory and EXPERIMENTS.md
// for paper-versus-measured results.
package rvma

import (
	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	irvma "rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// Core RVMA types, re-exported from the implementation package. VAddr is
// a 64-bit mailbox identifier — a virtual address, never a physical one.
type (
	VAddr        = irvma.VAddr
	EpochType    = irvma.EpochType
	Mode         = irvma.Mode
	NotifyMode   = irvma.NotifyMode
	Config       = irvma.Config
	Endpoint     = irvma.Endpoint
	Window       = irvma.Window
	Buffer       = irvma.Buffer
	PutOp        = irvma.PutOp
	GetOp        = irvma.GetOp
	Notification = irvma.Notification
	Stats        = irvma.Stats
)

// Completion-counting modes (the paper's epoch_type).
const (
	EpochBytes = irvma.EpochBytes
	EpochOps   = irvma.EpochOps
)

// Window placement modes (§IV-B).
const (
	Steered = irvma.Steered
	Managed = irvma.Managed
)

// Host notification mechanisms (§IV-C).
const (
	NotifyMWait = irvma.NotifyMWait
	NotifyPoll  = irvma.NotifyPoll
)

// API errors.
var (
	ErrClosed      = irvma.ErrClosed
	ErrNoWindow    = irvma.ErrNoWindow
	ErrNoBuffer    = irvma.ErrNoBuffer
	ErrNoHistory   = irvma.ErrNoHistory
	ErrBadArgument = irvma.ErrBadArgument
)

// DefaultConfig returns the endpoint configuration used by most
// experiments (256 hardware counters, NACKs enabled, 4-epoch history,
// MWait notification, real data movement).
func DefaultConfig() Config { return irvma.DefaultConfig() }

// NewEndpoint attaches an RVMA endpoint (host library + NIC model) to a
// NIC built on the simulation substrate.
func NewEndpoint(n *nic.NIC, cfg Config) *Endpoint { return irvma.NewEndpoint(n, cfg) }

// TestbedConfig parameterizes NewTestbed.
type TestbedConfig struct {
	// Topology defaults to a single switch joining all nodes.
	Topology topology.Topology
	// Fabric defaults to fabric.DefaultConfig (100 Gbps, static routing).
	Fabric *fabric.Config
	// Profile defaults to nic.DefaultProfile.
	Profile *nic.Profile
	// PCIe defaults to pcie.Gen4x16 (the paper's 150 ns bus).
	PCIe *pcie.Config
	// Endpoint defaults to DefaultConfig.
	Endpoint *Config
	// Seed defaults to 1.
	Seed uint64
}

// Testbed is a ready-to-run simulated network of RVMA endpoints.
type Testbed struct {
	Engine    *sim.Engine
	Network   *fabric.Network
	Endpoints []*Endpoint
}

// NewTestbed builds an n-node simulation with an RVMA endpoint per node.
func NewTestbed(n int, cfg TestbedConfig) (*Testbed, error) {
	topo := cfg.Topology
	if topo == nil {
		topo = topology.NewSingleSwitch(n)
	}
	fcfg := fabric.DefaultConfig()
	if cfg.Fabric != nil {
		fcfg = *cfg.Fabric
	}
	prof := nic.DefaultProfile()
	if cfg.Profile != nil {
		prof = *cfg.Profile
	}
	bus := pcie.Gen4x16()
	if cfg.PCIe != nil {
		bus = *cfg.PCIe
	}
	ecfg := DefaultConfig()
	if cfg.Endpoint != nil {
		ecfg = *cfg.Endpoint
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	eng := sim.NewEngine(seed)
	net, err := fabric.New(eng, topo, fcfg)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{Engine: eng, Network: net}
	for node := 0; node < n && node < topo.NumNodes(); node++ {
		tb.Endpoints = append(tb.Endpoints,
			NewEndpoint(nic.New(eng, net, node, bus, prof), ecfg))
	}
	return tb, nil
}

// Run executes the simulation to quiescence and returns the final time.
func (tb *Testbed) Run() sim.Time { return tb.Engine.Run() }
