package rvma_test

// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus the ablation benches DESIGN.md calls out. Each benchmark iteration
// runs a scaled-down but structurally identical experiment; use
// cmd/rvmabench for full-scale tables.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"rvma/internal/collective"
	"rvma/internal/fabric"
	"rvma/internal/harness"
	"rvma/internal/hostif"
	"rvma/internal/microbench"
	"rvma/internal/motif"
	"rvma/internal/mpirma"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rstream"
	irvma "rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// benchOptions are harness options scaled for per-iteration benchmarking.
func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Sizes = []int{2, 1024, 65536}
	o.Iters = 50
	o.Runs = 2
	o.Nodes = 64
	o.LinkGbps = []float64{100, 2000}
	return o
}

// BenchmarkFig4LatencyVerbs regenerates Figure 4 (RVMA vs RDMA latency,
// Verbs profile; paper: up to 65.8% reduction).
func BenchmarkFig4LatencyVerbs(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		harness.Fig4(o)
	}
}

// BenchmarkFig5LatencyUCX regenerates Figure 5 (UCX profile; paper: 45.8%
// reduction).
func BenchmarkFig5LatencyUCX(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		harness.Fig5(o)
	}
}

// BenchmarkFig6Amortization regenerates Figure 6 (exchanges needed to
// amortize RDMA buffer setup to within 3%).
func BenchmarkFig6Amortization(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		harness.Fig6(o)
	}
}

// benchMotifPair runs one motif point under both transports.
func benchMotifPair(b *testing.B, m harness.MotifName, kind topology.Kind, routing fabric.RoutingMode, gbps float64) {
	b.Helper()
	nc := harness.NetConfig{Name: "bench", Kind: kind, Routing: routing}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunMotifPoint(m, motif.KindRVMA, nc, 64, gbps, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := harness.RunMotifPoint(m, motif.KindRDMA, nc, 64, gbps, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Sweep3D regenerates one Figure 7 point: Sweep3D on the
// adaptively routed dragonfly (the paper's 4.4x best-case configuration).
func BenchmarkFig7Sweep3D(b *testing.B) {
	benchMotifPair(b, harness.MotifSweep3D, topology.KindDragonfly, fabric.RouteAdaptive, 2000)
}

// BenchmarkFig7Sweep3DContemporary benchmarks the 100 Gbps point.
func BenchmarkFig7Sweep3DContemporary(b *testing.B) {
	benchMotifPair(b, harness.MotifSweep3D, topology.KindDragonfly, fabric.RouteAdaptive, 100)
}

// BenchmarkFig8Halo3D regenerates one Figure 8 point: Halo3D on HyperX
// with Dimension Order Routing (the paper's best case).
func BenchmarkFig8Halo3D(b *testing.B) {
	benchMotifPair(b, harness.MotifHalo3D, topology.KindHyperX, fabric.RouteStatic, 400)
}

// BenchmarkIncast benchmarks the bonus many-to-one motif.
func BenchmarkIncast(b *testing.B) {
	benchMotifPair(b, harness.MotifIncast, topology.KindDragonfly, fabric.RouteAdaptive, 400)
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationNotifyMWait measures the RVMA ping-pong with
// Monitor/MWait completion observation.
func BenchmarkAblationNotifyMWait(b *testing.B) {
	benchNotify(b, irvma.NotifyMWait)
}

// BenchmarkAblationNotifyPoll measures the same with polling observation.
func BenchmarkAblationNotifyPoll(b *testing.B) {
	benchNotify(b, irvma.NotifyPoll)
}

func benchNotify(b *testing.B, mode irvma.NotifyMode) {
	b.Helper()
	cfg := microbench.LatencyConfig{
		Profile: hostif.Verbs(), Size: 64, Iters: 100, Runs: 1, Seed: 1,
		Notification: mode,
	}
	for i := 0; i < b.N; i++ {
		res := microbench.MeasureLatency(cfg, microbench.TransportRVMA)
		b.ReportMetric(res.Summary.Mean, "sim-ns/op")
	}
}

// BenchmarkAblationRDMABuffers sweeps the RDMA negotiated-buffer depth on
// Sweep3D, quantifying how much credit pipelining recovers.
func BenchmarkAblationRDMABuffers(b *testing.B) {
	for _, bufs := range []int{1, 2, 4} {
		bufs := bufs
		b.Run(benchName("bufs", bufs), func(b *testing.B) {
			topo, err := topology.ForNodeCount(topology.KindDragonfly, 64)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				cfg := motif.DefaultClusterConfig(topo, motif.KindRDMA)
				cfg.RDMABuffers = bufs
				cfg.ApplyLinkSpeed(400)
				c, err := motif.NewCluster(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tm, err := motif.RunSweep3D(c, motif.DefaultSweep3DConfig(topo.NumNodes()))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(tm.Microseconds(), "sim-us/run")
			}
		})
	}
}

// BenchmarkAblationAdaptiveVsStaticFabric measures raw fabric delivery
// under the two routing disciplines (design decision 2 in DESIGN.md).
func BenchmarkAblationAdaptiveVsStaticFabric(b *testing.B) {
	for _, mode := range []fabric.RoutingMode{fabric.RouteStatic, fabric.RouteAdaptive} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			nc := harness.NetConfig{Name: "bench", Kind: topology.KindFatTree, Routing: mode}
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunMotifPoint(harness.MotifSweep3D, motif.KindRVMA, nc, 64, 100, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkCollectives measures the extension collectives under both
// transports (see internal/collective).
func BenchmarkCollectives(b *testing.B) {
	for _, op := range []collective.Op{collective.OpBarrier, collective.OpAllreduce} {
		for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
			op, kind := op, kind
			b.Run(string(op)+"/"+kind.String(), func(b *testing.B) {
				topo, err := topology.ForNodeCount(topology.KindDragonfly, 32)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					cfg := motif.DefaultClusterConfig(topo, kind)
					c, err := motif.NewCluster(cfg)
					if err != nil {
						b.Fatal(err)
					}
					tm, err := collective.RunCollective(c, collective.DefaultConfig(op))
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(tm.Microseconds(), "sim-us/run")
				}
			})
		}
	}
}

// BenchmarkMPIRMAFence measures the mpirma fence (entry + data-wait + exit
// rounds) at a few communicator sizes.
func BenchmarkMPIRMAFence(b *testing.B) {
	for _, ranks := range []int{4, 16} {
		ranks := ranks
		b.Run(fmt.Sprintf("ranks-%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(1)
				net, err := fabric.New(eng, topology.NewSingleSwitch(ranks), fabric.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				prof := nic.DefaultProfile()
				eps := make([]*irvma.Endpoint, ranks)
				for j := 0; j < ranks; j++ {
					eps[j] = irvma.NewEndpoint(nic.New(eng, net, j, pcie.Gen4x16(), prof), irvma.DefaultConfig())
				}
				comm, err := mpirma.NewComm(eps)
				if err != nil {
					b.Fatal(err)
				}
				win, err := mpirma.CreateWin(comm, mpirma.WinConfig{Size: 64})
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < ranks; r++ {
					r := r
					eng.Spawn("rank", func(p *sim.Process) {
						for e := 0; e < 5; e++ {
							if err := win.Fence(p, r); err != nil {
								b.Error(err)
								return
							}
						}
					})
				}
				eng.Run()
				b.ReportMetric(eng.Now().Microseconds()/5, "sim-us/fence")
			}
		})
	}
}

// BenchmarkStreamThroughput measures rstream end-to-end transfer.
func BenchmarkStreamThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteStatic
		net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
		if err != nil {
			b.Fatal(err)
		}
		prof := nic.DefaultProfile()
		a := irvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), irvma.DefaultConfig())
		c := irvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), irvma.DefaultConfig())
		ca, cb, err := rstream.Pair(a, c, 1, rstream.Config{SegmentBytes: 4096, Depth: 8})
		if err != nil {
			b.Fatal(err)
		}
		const total = 256 * 1024
		payload := make([]byte, total)
		eng.Spawn("w", func(p *sim.Process) { ca.Write(payload) })
		eng.Spawn("r", func(p *sim.Process) {
			f, _ := cb.Read(total)
			p.Wait(f)
		})
		eng.Run()
		b.ReportMetric(float64(total)*8/eng.Now().Nanoseconds(), "sim-gbps")
	}
}
