package rvma_test

import (
	"bytes"
	"testing"

	"rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

func TestTestbedQuickstart(t *testing.T) {
	tb, err := rvma.NewTestbed(2, rvma.TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	win, err := tb.Endpoints[1].InitWindow(0x11FF0011, 1024, rvma.EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := win.PostBuffer(1024)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x42}, 1024)
	var localDone, remoteDone sim.Time
	tb.Engine.Spawn("sender", func(p *sim.Process) {
		op := tb.Endpoints[0].Put(1, 0x11FF0011, 0, payload)
		p.Wait(op.Local)
		localDone = p.Now()
	})
	tb.Engine.Spawn("receiver", func(p *sim.Process) {
		n := tb.Endpoints[1].WatchBuffer(buf)
		p.Wait(n.Done)
		remoteDone = p.Now()
	})
	tb.Run()
	if localDone == 0 || remoteDone == 0 || localDone >= remoteDone {
		t.Fatalf("local %v, remote %v", localDone, remoteDone)
	}
	if got := tb.Endpoints[1].Memory().Read(buf.Region.Base, 1024); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
	if win.Epoch() != 1 {
		t.Fatalf("epoch = %d", win.Epoch())
	}
}

func TestTestbedCustomTopology(t *testing.T) {
	topo := topology.NewFatTree(4)
	tb, err := rvma.NewTestbed(topo.NumNodes(), rvma.TestbedConfig{Topology: topo, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Endpoints) != 16 {
		t.Fatalf("endpoints = %d", len(tb.Endpoints))
	}
	win, _ := tb.Endpoints[15].InitWindow(1, 64, rvma.EpochBytes)
	win.PostBuffer(64)
	done := false
	tb.Engine.Schedule(0, func() {
		op := tb.Endpoints[0].Put(15, 1, 0, make([]byte, 64))
		op.Local.OnComplete(func() {})
		win.NextCompletion().OnComplete(func() { done = true })
	})
	tb.Run()
	if !done {
		t.Fatal("cross-fat-tree put never completed")
	}
}

func TestFacadeConstantsMatch(t *testing.T) {
	if rvma.EpochBytes.String() != "EPOCH_BYTES" || rvma.EpochOps.String() != "EPOCH_OPS" {
		t.Fatal("epoch type names wrong")
	}
	if rvma.Steered.String() != "steered" || rvma.Managed.String() != "managed" {
		t.Fatal("mode names wrong")
	}
	cfg := rvma.DefaultConfig()
	if !cfg.NACKEnabled || cfg.HistoryDepth == 0 {
		t.Fatalf("default config = %+v", cfg)
	}
}
